"""The sixteen baseline methods of the paper's Section IV-B.

Three families, each re-implemented from scratch on the shared
substrates (``repro.graph`` for sampling, ``repro.autograd`` for the
neural models):

* static network embedding — DeepWalk, LINE, node2vec, GATNE;
* recommendation GNNs — NGCF, LightGCN, MATN, MB-GMN, HybridGNN, MeLU;
* dynamic network embedding — NetWalk, DyGNN, EvolveGCN, TGAT, DyHNE,
  DyHATR.

Every model implements the same :class:`~repro.baselines.base.BaselineModel`
API (``fit`` / ``partial_fit`` / ``score``), so the benchmark harnesses
treat them interchangeably with SUPA.
"""

from repro.baselines.base import BaselineModel, EmbeddingModel
from repro.baselines.registry import BASELINE_BUILDERS, available_baselines, make_baseline

__all__ = [
    "BaselineModel",
    "EmbeddingModel",
    "BASELINE_BUILDERS",
    "available_baselines",
    "make_baseline",
]
