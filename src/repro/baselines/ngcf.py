"""NGCF (Wang et al., SIGIR 2019).

Neural Graph Collaborative Filtering: message passing over the
user-item graph with both a linear term and a bilinear
element-product term per layer,

    E^(k+1) = LeakyReLU( (A_hat + I) E^(k) W1 + (A_hat E^(k) * E^(k)) W2 ),

final representations concatenate all layers.  Trained with BPR.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.autograd.functional import leaky_relu
from repro.autograd.init import normal_, xavier_uniform
from repro.autograd.tensor import concatenate
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import (
    BPRSampler,
    normalized_adjacency,
    sparse_matmul,
    train_bpr,
)
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class NGCF(EmbeddingModel):
    """Message-passing CF with bilinear interaction terms."""

    name = "NGCF"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_layers: int = 2,
        steps: int = 250,
        batch_size: int = 128,
        lr: float = 0.005,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_layers = num_layers
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        adj = normalized_adjacency(n, stream)
        adj_self = (adj + sp.eye(n, format="csr")).tocsr()
        base = normal_((n, self.dim), std=0.1, rng=self.rng)
        w1 = [xavier_uniform((self.dim, self.dim), rng=self.rng) for _ in range(self.num_layers)]
        w2 = [xavier_uniform((self.dim, self.dim), rng=self.rng) for _ in range(self.num_layers)]

        def propagate() -> Tensor:
            layer = base
            layers = [base]
            for k in range(self.num_layers):
                side = sparse_matmul(adj_self, layer) @ w1[k]
                bilinear = (sparse_matmul(adj, layer) * layer) @ w2[k]
                layer = leaky_relu(side + bilinear, slope=0.2)
                layers.append(layer)
            return concatenate(layers, axis=1)

        pairs = bipartite_pairs(self.dataset, stream)
        if pairs:
            sampler = BPRSampler(self.dataset, pairs, rng=self.rng)
            train_bpr(
                [base] + w1 + w2,
                propagate,
                sampler,
                steps=self.steps,
                batch_size=self.batch_size,
                lr=self.lr,
            )
        self.embeddings = propagate().numpy().copy()
