"""NetWalk (Yu et al., KDD 2018), simplified.

Dynamic network embedding via walk encoding with incremental updates: a
reservoir of random walks is maintained as the network evolves; new
edges add fresh walks through their endpoints and the encoder is
updated on the new material only, so embeddings track the stream.

Simplification vs. the original: the deep autoencoder with clique
(pairwise) regularisation is replaced by skip-gram encoding of the same
walk reservoir — both learn from walk co-occurrence; the incremental
walk-reservoir update, which is the dynamic mechanism, is kept.
NetWalk was built for anomaly detection, and the paper finds it weak
for recommendation (Table V); this implementation preserves that
characteristic.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.baselines.sgns import SkipGramTrainer
from repro.datasets.base import Dataset
from repro.graph.sampling import random_walk_corpus
from repro.graph.streams import EdgeStream


class NetWalk(EmbeddingModel):
    """Walk-reservoir embeddings with incremental stream updates."""

    name = "NetWalk"
    is_dynamic = True

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_walks: int = 3,
        walk_length: int = 6,
        window: int = 2,
        negatives: int = 3,
        epochs: int = 1,
        reservoir_size: int = 5000,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.reservoir_size = reservoir_size
        self._trainer: Optional[SkipGramTrainer] = None
        self._reservoir: List[List[int]] = []
        self._graph = None

    def fit(self, stream: EdgeStream) -> None:
        self._graph = self.dataset.empty_graph()
        self._trainer = SkipGramTrainer(
            num_nodes=self.dataset.num_nodes,
            dim=self.dim,
            negatives=self.negatives,
            window=self.window,
            rng=self.rng,
        )
        self._reservoir = []
        self._seen = EdgeStream([])
        self.partial_fit(stream)

    def partial_fit(self, stream: EdgeStream) -> None:
        """Incremental update: extend the graph, spawn walks through the
        new edges' endpoints, retrain on the fresh walks."""
        if self._trainer is None:
            self.fit(stream)
            return
        new_walks: List[List[int]] = []
        for e in stream:
            self._graph.add_edge(e.u, e.v, e.edge_type, e.t)
        for e in stream:
            for endpoint in (e.u, e.v):
                for _ in range(self.num_walks):
                    walk = [endpoint]
                    current = endpoint
                    for _ in range(self.walk_length - 1):
                        nbrs = self._graph.neighbors(current)
                        if not nbrs:
                            break
                        current = nbrs[int(self.rng.integers(len(nbrs)))][0]
                        walk.append(current)
                    if len(walk) > 1:
                        new_walks.append(walk)
        self._reservoir.extend(new_walks)
        if len(self._reservoir) > self.reservoir_size:
            self._reservoir = self._reservoir[-self.reservoir_size :]
        if new_walks:
            self._trainer.train_corpus(new_walks, epochs=self.epochs, lr_decay=False)
        self.embeddings = self._trainer.embeddings()
