"""Skip-gram with negative sampling (SGNS) — the word2vec core shared by
the random-walk baselines (DeepWalk, node2vec, GATNE, NetWalk) and LINE.

Hand-written numpy gradients with per-centre vectorisation: one update
gathers the centre's window contexts plus ``k`` negatives and applies a
single fused SGD step, which is what makes corpus training tractable in
pure Python.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.alias import AliasTable
from repro.utils.rng import RngLike, new_rng


class SkipGramTrainer:
    """SGNS over integer-token sequences.

    Parameters
    ----------
    num_nodes:
        Vocabulary size (node count).
    dim:
        Embedding dimension.
    negatives:
        Negative samples per positive pair.
    window:
        Context window radius within a walk.
    noise_weights:
        Unnormalised noise distribution (usually degree^0.75); uniform
        when omitted.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: int,
        lr: float = 0.025,
        negatives: int = 5,
        window: int = 3,
        noise_weights: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ):
        if num_nodes < 1:
            raise ValueError("vocabulary must be non-empty")
        self.num_nodes = num_nodes
        self.dim = dim
        self.lr = lr
        self.negatives = negatives
        self.window = window
        self.rng = new_rng(rng)
        bound = 0.5 / dim
        self.target = self.rng.uniform(-bound, bound, size=(num_nodes, dim))
        self.context = np.zeros((num_nodes, dim), dtype=np.float64)
        if noise_weights is None:
            noise_weights = np.ones(num_nodes, dtype=np.float64)
        weights = np.asarray(noise_weights, dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones(num_nodes, dtype=np.float64)
        self._noise = AliasTable(weights)

    # ------------------------------------------------------------------ steps

    def train_pair(self, center: int, context: int, lr: Optional[float] = None) -> float:
        """One positive pair + ``negatives`` noise pairs; returns loss."""
        lr = self.lr if lr is None else lr
        targets = np.concatenate(
            ([context], np.asarray(self._noise.sample(self.rng, self.negatives)))
        )
        labels = np.zeros(targets.size, dtype=np.float64)
        labels[0] = 1.0
        return self._fused_step(center, targets, labels, lr)

    def _fused_step(
        self, center: int, targets: np.ndarray, labels: np.ndarray, lr: float
    ) -> float:
        w = self.target[center]
        ctx = self.context[targets]
        scores = ctx @ w
        sig = 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
        coeff = sig - labels  # d(-log sigma(+-s)) / ds
        grad_w = coeff @ ctx
        # Context rows may repeat (duplicate negatives): accumulate.
        np.add.at(self.context, targets, -lr * np.outer(coeff, w))
        self.target[center] -= lr * grad_w
        with np.errstate(divide="ignore"):
            loss = -(
                labels * np.log(np.maximum(sig, 1e-12))
                + (1 - labels) * np.log(np.maximum(1 - sig, 1e-12))
            ).sum()
        return float(loss)

    # ----------------------------------------------------------------- corpus

    def train_corpus(
        self,
        corpus: Sequence[Sequence[int]],
        epochs: int = 2,
        lr_decay: bool = True,
    ) -> float:
        """Window-based SGNS over a walk corpus; returns final-epoch loss."""
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        total_steps = max(1, epochs * sum(max(0, len(w) - 1) for w in corpus))
        step = 0
        last_epoch_loss = 0.0
        for epoch in range(epochs):
            epoch_loss = 0.0
            for walk in corpus:
                walk = list(walk)
                for i, center in enumerate(walk):
                    lo = max(0, i - self.window)
                    hi = min(len(walk), i + self.window + 1)
                    for j in range(lo, hi):
                        if j == i:
                            continue
                        lr = (
                            self.lr * max(1e-4, 1.0 - step / total_steps)
                            if lr_decay
                            else self.lr
                        )
                        epoch_loss += self.train_pair(center, walk[j], lr)
                    step += 1
            last_epoch_loss = epoch_loss
        return last_epoch_loss

    def embeddings(self) -> np.ndarray:
        """The learned node representations (target vectors)."""
        return self.target
