"""node2vec (Grover & Leskovec, KDD 2016).

DeepWalk with second-order biased walks: the return parameter ``p`` and
in-out parameter ``q`` reshape the exploration between BFS-like and
DFS-like neighbourhoods.  The bias is computed on the fly per step
(alias pre-computation per (prev, cur) pair does not pay off at this
graph scale).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.baselines.sgns import SkipGramTrainer
from repro.datasets.base import Dataset
from repro.graph.dmhg import DMHG
from repro.graph.streams import EdgeStream
from repro.utils.rng import new_rng


def biased_walk(
    graph: DMHG, start: int, length: int, p: float, q: float, rng
) -> List[int]:
    """One node2vec walk: bias 1/p to return, 1 to triangle-close, 1/q out."""
    walk = [start]
    prev = None
    current = start
    for _ in range(length - 1):
        nbrs = graph.neighbors(current)
        if not nbrs:
            break
        nodes = np.asarray([n for n, _, _, _ in nbrs], dtype=np.int64)
        if prev is None:
            weights = np.ones(nodes.size, dtype=np.float64)
        else:
            prev_nbrs = {n for n, _, _, _ in graph.neighbors(prev)}
            weights = np.where(
                nodes == prev,
                1.0 / p,
                np.asarray([1.0 if n in prev_nbrs else 1.0 / q for n in nodes]),
            )
        weights = weights / weights.sum()
        nxt = int(nodes[rng.choice(nodes.size, p=weights)])
        walk.append(nxt)
        prev, current = current, nxt
    return walk


class Node2Vec(EmbeddingModel):
    """Second-order biased walks + skip-gram."""

    name = "node2vec"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_walks: int = 5,
        walk_length: int = 8,
        window: int = 3,
        negatives: int = 5,
        epochs: int = 2,
        p: float = 1.0,
        q: float = 0.5,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.p = p
        self.q = q

    def fit(self, stream: EdgeStream) -> None:
        graph = self.dataset.build_graph(stream)
        rng = new_rng(self.seed)
        corpus = []
        for start in range(graph.num_nodes):
            for _ in range(self.num_walks):
                walk = biased_walk(graph, start, self.walk_length, self.p, self.q, rng)
                if len(walk) > 1:
                    corpus.append(walk)
        trainer = SkipGramTrainer(
            num_nodes=graph.num_nodes,
            dim=self.dim,
            negatives=self.negatives,
            window=self.window,
            noise_weights=graph.degrees().astype(np.float64) ** 0.75,
            rng=rng,
        )
        trainer.train_corpus(corpus, epochs=self.epochs)
        self.embeddings = trainer.embeddings()
