"""Shared machinery for the GCN-style recommendation baselines.

Provides the symmetrically normalised adjacency builder, a
sparse-times-dense matmul op that participates in the autograd tape, and
a BPR (Bayesian Personalised Ranking) training loop that the
neighbour-aggregation models (NGCF, LightGCN, MATN, MB-GMN, HybridGNN,
EvolveGCN, DyHATR) plug their propagation functions into.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import Adam, Tensor
from repro.autograd.functional import log_sigmoid
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream
from repro.utils.rng import RngLike, new_rng


def normalized_adjacency(
    num_nodes: int,
    stream: EdgeStream,
    edge_types: Optional[Sequence[str]] = None,
    self_loops: bool = False,
) -> sp.csr_matrix:
    """``D^-1/2 (A [+ I]) D^-1/2`` over the undirected collapsed graph.

    ``edge_types`` restricts to a behaviour subset (per-behaviour
    adjacencies for the multi-behaviour models).  Parallel edges
    accumulate weight, as in the reference implementations.
    """
    rows, cols = [], []
    wanted = set(edge_types) if edge_types is not None else None
    for e in stream:
        if wanted is not None and e.edge_type not in wanted:
            continue
        rows.extend((e.u, e.v))
        cols.extend((e.v, e.u))
    data = np.ones(len(rows), dtype=np.float64)
    adj = sp.coo_matrix(
        (data, (rows, cols)), shape=(num_nodes, num_nodes)
    ).tocsr()
    if self_loops:
        adj = adj + sp.eye(num_nodes, format="csr")
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def sparse_matmul(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Differentiable ``matrix @ x`` for a constant scipy sparse matrix.

    Backward propagates ``matrix.T @ grad`` into ``x``.
    """
    out_data = matrix @ x.data
    mt = matrix.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        x._accumulate(mt @ grad)

    return Tensor._make(np.asarray(out_data), (x,), backward)


class BPRSampler:
    """Draws (query, positive, negative) triples per relation.

    Negatives are uniform over the positive node's type — the standard
    BPR treatment for implicit feedback.
    """

    def __init__(self, dataset: Dataset, pairs_by_rel: Dict[str, np.ndarray], rng: RngLike = None):
        self.dataset = dataset
        self.pairs_by_rel = {r: p for r, p in pairs_by_rel.items() if p.size}
        if not self.pairs_by_rel:
            raise ValueError("BPR sampling needs at least one positive pair")
        self.rng = new_rng(rng)
        self._neg_pools = {}
        for rel in self.pairs_by_rel:
            _, dst_type = dataset.schema.endpoints_of(rel)
            self._neg_pools[rel] = dataset.nodes_of_type(dst_type)

    @property
    def relations(self) -> List[str]:
        return sorted(self.pairs_by_rel)

    def sample(
        self, relation: str, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        pairs = self.pairs_by_rel[relation]
        idx = self.rng.integers(pairs.shape[0], size=batch_size)
        queries = pairs[idx, 0]
        positives = pairs[idx, 1]
        pool = self._neg_pools[relation]
        negatives = pool[self.rng.integers(pool.size, size=batch_size)]
        return queries, positives, negatives


def bpr_step(
    embeddings: Tensor,
    queries: np.ndarray,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> Tensor:
    """BPR loss ``-mean log sigma(s_pos - s_neg)`` on an embedding table."""
    q = embeddings.gather_rows(queries)
    pos = embeddings.gather_rows(positives)
    neg = embeddings.gather_rows(negatives)
    s_pos = (q * pos).sum(axis=1)
    s_neg = (q * neg).sum(axis=1)
    return -log_sigmoid(s_pos - s_neg).mean()


def train_bpr(
    parameters: Sequence[Tensor],
    propagate: Callable[[], Tensor],
    sampler: BPRSampler,
    steps: int = 200,
    batch_size: int = 128,
    lr: float = 0.01,
    weight_decay: float = 1e-5,
    relation_tables: Optional[Callable[[], Dict[str, Tensor]]] = None,
) -> List[float]:
    """Generic BPR training loop.

    ``propagate`` recomputes the (propagated) embedding table each step;
    with ``relation_tables`` given, per-relation tables are used for
    that relation's triples instead (multi-behaviour models).  Returns
    the per-step loss trace.
    """
    optimizer = Adam(parameters, lr=lr, weight_decay=weight_decay)
    relations = sampler.relations
    losses: List[float] = []
    for step in range(steps):
        relation = relations[step % len(relations)]
        queries, positives, negatives = sampler.sample(relation, batch_size)
        if relation_tables is not None:
            table = relation_tables()[relation]
        else:
            table = propagate()
        loss = bpr_step(table, queries, positives, negatives)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses
