"""SUPA wrapped in the shared baseline API.

Lets the benchmark harnesses treat SUPA interchangeably with the sixteen
baselines: ``fit`` runs InsLearn over the stream, ``partial_fit``
continues incrementally (SUPA's whole point — no retraining), ``score``
delegates to Eq. 15.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineModel
from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig, InsLearnTrainer
from repro.core.model import SUPA
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class SUPARecommender(BaselineModel):
    """SUPA + InsLearn behind the common fit/partial_fit/score interface."""

    name = "SUPA"
    is_dynamic = True

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        config: Optional[SUPAConfig] = None,
        train_config: Optional[InsLearnConfig] = None,
        max_neighbors: Optional[int] = None,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.config = (config or SUPAConfig(dim=dim)).with_overrides(dim=dim, seed=seed)
        self.train_config = train_config or InsLearnConfig(seed=seed)
        self.max_neighbors = max_neighbors
        self.model: Optional[SUPA] = None
        self.last_report = None

    def _ensure_model(self) -> SUPA:
        if self.model is None:
            self.model = SUPA.for_dataset(
                self.dataset, self.config, max_neighbors=self.max_neighbors
            )
        return self.model

    def fit(self, stream: EdgeStream) -> None:
        """Fresh model, one InsLearn pass over ``stream``."""
        self.model = None
        model = self._ensure_model()
        trainer = InsLearnTrainer(model, self.train_config)
        self.last_report = trainer.fit(stream)

    def partial_fit(self, stream: EdgeStream) -> None:
        """Continue InsLearn on new edges — no retraining from scratch."""
        model = self._ensure_model()
        trainer = InsLearnTrainer(model, self.train_config)
        self.last_report = trainer.fit(stream)

    def score(
        self, node: int, candidates: np.ndarray, edge_type: str, t: float
    ) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("SUPARecommender.score() called before fit()")
        return self.model.score(node, candidates, edge_type, t)
