"""DyHATR (Xue et al., ECML-PKDD 2020), simplified.

Dynamic heterogeneous graph embedding with hierarchical attention and a
temporal RNN: per snapshot, node-level aggregation runs within each
edge type, semantic attention fuses the per-type views, and a GRU over
the snapshot sequence captures evolution.

Simplification vs. the original: node-level GAT attention is replaced by
normalised-adjacency mean aggregation with a per-type transform (one
head), and the temporal attention after the GRU is dropped in favour of
the GRU's final state.  The hierarchy — type-wise aggregation, semantic
fusion, recurrent evolution — is kept.  Trained with BPR summed across
snapshots.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Adam, Tensor
from repro.autograd.functional import sigmoid, softmax, tanh
from repro.autograd.init import normal_, xavier_uniform
from repro.autograd.tensor import concatenate
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import (
    BPRSampler,
    bpr_step,
    normalized_adjacency,
    sparse_matmul,
)
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class DyHATR(EmbeddingModel):
    """Hierarchical (type + semantic) attention with a temporal GRU."""

    name = "DyHATR"
    is_dynamic = True

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_snapshots: int = 3,
        steps: int = 100,
        batch_size: int = 128,
        lr: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_snapshots = num_snapshots
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        relations = list(self.dataset.schema.edge_types)
        snapshots = stream.equal_slices(min(self.num_snapshots, max(1, len(stream))))
        adjs = [
            {r: normalized_adjacency(n, snap, edge_types=[r], self_loops=True) for r in relations}
            for snap in snapshots
        ]

        features = normal_((n, self.dim), std=0.1, rng=self.rng)
        w_rel = {r: xavier_uniform((self.dim, self.dim), rng=self.rng) for r in relations}
        semantic_q = normal_((self.dim,), std=0.1, rng=self.rng)
        # GRU over snapshots acting on the (N, dim) node-state matrix.
        wz = xavier_uniform((self.dim, self.dim), rng=self.rng)
        uz = xavier_uniform((self.dim, self.dim), rng=self.rng)
        wh = xavier_uniform((self.dim, self.dim), rng=self.rng)
        uh = xavier_uniform((self.dim, self.dim), rng=self.rng)
        params = (
            [features, semantic_q, wz, uz, wh, uh] + [w_rel[r] for r in relations]
        )

        def snapshot_view(adj_by_rel) -> Tensor:
            views = [
                tanh(sparse_matmul(adj_by_rel[r], features) @ w_rel[r])
                for r in relations
            ]
            scores = [
                (tanh(v.mean(axis=0)) * semantic_q).sum().reshape(1) for v in views
            ]
            beta = softmax(concatenate(scores, axis=0).reshape(1, len(relations)))
            beta = beta.reshape(len(relations))
            out = views[0] * beta.gather_rows([0])
            for k in range(1, len(views)):
                out = out + views[k] * beta.gather_rows([k])
            return out

        def unroll() -> List[Tensor]:
            states = []
            h = features
            for adj_by_rel in adjs:
                x = snapshot_view(adj_by_rel)
                z = sigmoid(x @ wz + h @ uz)
                h_tilde = tanh(x @ wh + (h * z) @ uh)
                h = (1.0 - z) * h + z * h_tilde
                states.append(h)
            return states

        samplers = []
        for snap in snapshots:
            pairs = bipartite_pairs(self.dataset, snap)
            samplers.append(BPRSampler(self.dataset, pairs, rng=self.rng) if pairs else None)

        if any(s is not None for s in samplers):
            optimizer = Adam(params, lr=self.lr, weight_decay=1e-5)
            for step in range(self.steps):
                states = unroll()
                loss = None
                for state, sampler in zip(states, samplers):
                    if sampler is None:
                        continue
                    rel = sampler.relations[step % len(sampler.relations)]
                    q, pos, neg = sampler.sample(rel, self.batch_size)
                    term = bpr_step(state, q, pos, neg)
                    loss = term if loss is None else loss + term
                if loss is None:
                    break
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        self.embeddings = unroll()[-1].numpy().copy()
