"""Name -> class registry covering the paper's full method roster.

Keys match the row labels of Tables V/VI.  ``make_baseline`` constructs a
model for a dataset; extra keyword arguments flow to the constructor so
harnesses can shrink step counts for quick runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines.base import BaselineModel
from repro.baselines.deepwalk import DeepWalk
from repro.baselines.dygnn import DyGNN
from repro.baselines.dyhatr import DyHATR
from repro.baselines.dyhne import DyHNE
from repro.baselines.evolvegcn import EvolveGCN
from repro.baselines.gatne import GATNE
from repro.baselines.hybridgnn import HybridGNN
from repro.baselines.lightgcn import LightGCN
from repro.baselines.line import LINE
from repro.baselines.matn import MATN
from repro.baselines.mbgmn import MBGMN
from repro.baselines.melu import MeLU
from repro.baselines.netwalk import NetWalk
from repro.baselines.ngcf import NGCF
from repro.baselines.node2vec import Node2Vec
from repro.baselines.supa_adapter import SUPARecommender
from repro.baselines.tgat import TGAT
from repro.datasets.base import Dataset

BASELINE_BUILDERS: Dict[str, Callable[..., BaselineModel]] = {
    # static network embedding
    "DeepWalk": DeepWalk,
    "LINE": LINE,
    "node2vec": Node2Vec,
    "GATNE": GATNE,
    # recommendation methods
    "NGCF": NGCF,
    "LightGCN": LightGCN,
    "MATN": MATN,
    "MB-GMN": MBGMN,
    "HybridGNN": HybridGNN,
    "MeLU": MeLU,
    # dynamic network embedding
    "NetWalk": NetWalk,
    "DyGNN": DyGNN,
    "EvolveGCN": EvolveGCN,
    "TGAT": TGAT,
    "DyHNE": DyHNE,
    "DyHATR": DyHATR,
    # ours
    "SUPA": SUPARecommender,
}

#: the six strong baselines the paper carries into Sections IV-E/IV-F
STRONG_BASELINES: List[str] = [
    "node2vec",
    "GATNE",
    "LightGCN",
    "MB-GMN",
    "HybridGNN",
    "EvolveGCN",
]


def available_baselines() -> List[str]:
    return sorted(BASELINE_BUILDERS)


def make_baseline(name: str, dataset: Dataset, **kwargs) -> BaselineModel:
    """Instantiate baseline ``name`` for ``dataset``."""
    try:
        builder = BASELINE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown baseline {name!r}; available: {available_baselines()}"
        ) from None
    return builder(dataset, **kwargs)
