"""GATNE (Cen et al., KDD 2019) — transductive variant, simplified.

Representation learning for attributed multiplex heterogeneous
networks: each node owns a shared *base* embedding plus one *edge
embedding* per edge type, aggregated from the node's neighbours under
that type and projected through a per-type transformation.  The overall
embedding for type ``r`` is ``base + w_r * M_r(mean of neighbour bases
under r)``, trained with metapath-walk skip-gram per edge type.

Simplifications vs. the original: self-attention over edge embeddings is
replaced by a learned per-type scale, and attributes are absent (the
paper's datasets here have none) — the multiplex mechanism, which is
what Table V exercises, is kept.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.baselines.sgns import SkipGramTrainer
from repro.datasets.base import Dataset
from repro.graph.sampling import random_walk_corpus
from repro.graph.streams import EdgeStream


class GATNE(EmbeddingModel):
    """Multiplex heterogeneous embeddings: base + per-type neighbour term."""

    name = "GATNE"
    edge_dim_ratio = 0.5  # edge-embedding dim relative to base dim

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_walks: int = 4,
        walk_length: int = 8,
        window: int = 3,
        negatives: int = 5,
        epochs: int = 2,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs

    def fit(self, stream: EdgeStream) -> None:
        graph = self.dataset.build_graph(stream)
        n = graph.num_nodes

        # Base embeddings from type-aware metapath walks when the dataset
        # declares metapaths, plain walks otherwise.
        metapaths = self.dataset.metapaths or None
        corpus = random_walk_corpus(
            graph, self.num_walks, self.walk_length, rng=self.rng, metapaths=metapaths
        )
        if not corpus:
            corpus = random_walk_corpus(
                graph, self.num_walks, self.walk_length, rng=self.rng
            )
        trainer = SkipGramTrainer(
            num_nodes=n,
            dim=self.dim,
            negatives=self.negatives,
            window=self.window,
            noise_weights=graph.degrees().astype(np.float64) ** 0.75,
            rng=self.rng,
        )
        trainer.train_corpus(corpus, epochs=self.epochs)
        base = trainer.embeddings()

        # Per-type neighbour aggregation: mean of neighbour base
        # embeddings under each edge type, projected by a random (fixed)
        # orthogonal-ish matrix M_r and scaled by a fitted w_r.
        tables: Dict[str, np.ndarray] = {None: base}
        for edge_type in self.dataset.schema.edge_types:
            agg = np.zeros((n, self.dim), dtype=np.float64)
            counts = np.zeros(n, dtype=np.float64)
            for e in stream:
                if e.edge_type != edge_type:
                    continue
                agg[e.u] += base[e.v]
                agg[e.v] += base[e.u]
                counts[e.u] += 1
                counts[e.v] += 1
            mask = counts > 0
            agg[mask] /= counts[mask, None]
            m_r = self.rng.normal(0.0, 1.0 / np.sqrt(self.dim), (self.dim, self.dim))
            w_r = self._fit_scale(base, agg @ m_r, stream, edge_type)
            tables[edge_type] = base + w_r * (agg @ m_r)
        self.embeddings = tables

    def _fit_scale(
        self, base: np.ndarray, delta: np.ndarray, stream: EdgeStream, edge_type: str
    ) -> float:
        """Pick w_r in a small grid maximising mean positive-edge score."""
        pairs = [(e.u, e.v) for e in stream if e.edge_type == edge_type]
        if not pairs:
            return 0.0
        pairs = np.asarray(pairs[:512], dtype=np.int64)
        best_w, best_score = 0.0, -np.inf
        for w in (0.0, 0.25, 0.5, 1.0):
            emb = base + w * delta
            score = float(np.mean(np.sum(emb[pairs[:, 0]] * emb[pairs[:, 1]], axis=1)))
            if score > best_score:
                best_w, best_score = w, score
        return best_w
