"""LightGCN (He et al., SIGIR 2020).

Graph convolution for collaborative filtering stripped to its essence:
no feature transforms, no nonlinearity — embeddings are propagated
``E^(k+1) = A_hat E^(k)`` and the final representation is the layer
mean.  Trained with BPR.  A neighbour-aggregation model, hence exposed
to neighbourhood disturbance in the eta-truncation experiment (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd.init import normal_
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import (
    BPRSampler,
    normalized_adjacency,
    sparse_matmul,
    train_bpr,
)
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class LightGCN(EmbeddingModel):
    """Layer-averaged linear graph convolution + BPR."""

    name = "LightGCN"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_layers: int = 2,
        steps: int = 300,
        batch_size: int = 128,
        lr: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_layers = num_layers
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        adj = normalized_adjacency(n, stream)
        base = normal_((n, self.dim), std=0.1, rng=self.rng)

        def propagate() -> Tensor:
            layer = base
            total = base
            for _ in range(self.num_layers):
                layer = sparse_matmul(adj, layer)
                total = total + layer
            return total * (1.0 / (self.num_layers + 1))

        pairs = bipartite_pairs(self.dataset, stream)
        if pairs:
            sampler = BPRSampler(self.dataset, pairs, rng=self.rng)
            train_bpr(
                [base],
                propagate,
                sampler,
                steps=self.steps,
                batch_size=self.batch_size,
                lr=self.lr,
            )
        self.embeddings = propagate().numpy().copy()
