"""HybridGNN (Gu et al., ICDE 2022), simplified.

Hybrid representation learning in multiplex heterogeneous networks:
per-relation aggregation flows are fused by hierarchical attention — a
node-level aggregation within each relation, then a semantic-level
attention across relations:

    h_r = A_hat_r E W_r,     beta = softmax_r(q . tanh(mean(h_r) W_s)),
    E_final = E + sum_r beta_r h_r.

Simplification vs. the original: random-walk based hybrid aggregation
flows are approximated by the per-relation convolution (one flow per
relation); the hierarchical (node + semantic) attention fusion is kept.
Trained with BPR.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd.functional import softmax, tanh
from repro.autograd.init import normal_, xavier_uniform
from repro.autograd.tensor import concatenate
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import (
    BPRSampler,
    normalized_adjacency,
    sparse_matmul,
    train_bpr,
)
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class HybridGNN(EmbeddingModel):
    """Relation-wise aggregation fused by semantic attention."""

    name = "HybridGNN"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        steps: int = 250,
        batch_size: int = 128,
        lr: float = 0.005,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        relations = list(self.dataset.schema.edge_types)
        adjs = {r: normalized_adjacency(n, stream, edge_types=[r]) for r in relations}
        base = normal_((n, self.dim), std=0.1, rng=self.rng)
        w_rel = {r: xavier_uniform((self.dim, self.dim), rng=self.rng) for r in relations}
        semantic_query = normal_((self.dim,), std=0.1, rng=self.rng)

        def propagate() -> Tensor:
            flows = [sparse_matmul(adjs[r], base) @ w_rel[r] for r in relations]
            # Semantic attention: score each relation by its mean activation.
            scores = [
                (tanh(flow.mean(axis=0)) * semantic_query).sum().reshape(1)
                for flow in flows
            ]
            beta = softmax(concatenate(scores, axis=0).reshape(1, len(relations)))
            beta = beta.reshape(len(relations))
            out = base
            for k, flow in enumerate(flows):
                out = out + flow * beta.gather_rows([k])
            return out

        pairs = bipartite_pairs(self.dataset, stream)
        if pairs:
            sampler = BPRSampler(self.dataset, pairs, rng=self.rng)
            train_bpr(
                [base, semantic_query] + [w_rel[r] for r in relations],
                propagate,
                sampler,
                steps=self.steps,
                batch_size=self.batch_size,
                lr=self.lr,
            )
        self.embeddings = propagate().numpy().copy()
