"""The shared baseline API and embedding-scoring helpers.

Every baseline is constructed from a :class:`~repro.datasets.base.Dataset`
(for the schema and node layout), trained with :meth:`fit` on an edge
stream, and queried with :meth:`score` — the same signature SUPA
exposes, so evaluation code is method-agnostic.

``partial_fit`` supports the dynamic link-prediction protocol
(Section IV-E): static methods retrain on everything seen so far (the
paper retrains them per slice), while dynamic methods override it with a
genuine incremental update.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream
from repro.utils.rng import new_rng


class BaselineModel(abc.ABC):
    """Abstract recommendation baseline over a DMHG dataset."""

    #: human-readable method name used in benchmark tables
    name: str = "baseline"
    #: whether the method consumes timestamps (used in reports only)
    is_dynamic: bool = False

    def __init__(self, dataset: Dataset, dim: int = 32, seed: int = 0):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dataset = dataset
        self.dim = dim
        self.seed = seed
        self.rng = new_rng(seed)
        self._seen = EdgeStream([])

    # ------------------------------------------------------------------ train

    @abc.abstractmethod
    def fit(self, stream: EdgeStream) -> None:
        """Train from scratch on ``stream``."""

    def partial_fit(self, stream: EdgeStream) -> None:
        """Incorporate new edges.

        Default behaviour retrains on the concatenation of everything
        seen so far — the "retrain per slice" treatment static methods
        get in the dynamic protocol.  Dynamic methods override this.
        """
        self._seen = EdgeStream(list(self._seen) + list(stream))
        self.fit(self._seen)

    # ------------------------------------------------------------------ score

    @abc.abstractmethod
    def score(
        self, node: int, candidates: np.ndarray, edge_type: str, t: float
    ) -> np.ndarray:
        """Scores of ``candidates`` as partners of ``node`` under
        ``edge_type`` at time ``t`` (higher = more likely)."""


class EmbeddingModel(BaselineModel):
    """Baseline whose predictions are inner products of node embeddings.

    Subclasses fill ``self.embeddings`` — either one ``(N, d)`` array,
    or a dict mapping edge type names to ``(N, d)`` arrays for multiplex
    methods.  Missing relations fall back to the ``None`` key or the
    mean of the available tables.
    """

    def __init__(self, dataset: Dataset, dim: int = 32, seed: int = 0):
        super().__init__(dataset, dim=dim, seed=seed)
        self.embeddings: Optional[object] = None

    def _table(self, edge_type: str) -> np.ndarray:
        if self.embeddings is None:
            raise RuntimeError(f"{self.name}: score() called before fit()")
        if isinstance(self.embeddings, dict):
            table = self.embeddings.get(edge_type)
            if table is None:
                table = self.embeddings.get(None)
            if table is None:
                table = np.mean(list(self.embeddings.values()), axis=0)
            return table
        return self.embeddings

    def node_embedding(self, node: int, edge_type: str) -> np.ndarray:
        return self._table(edge_type)[node]

    def score(
        self, node: int, candidates: np.ndarray, edge_type: str, t: float
    ) -> np.ndarray:
        table = self._table(edge_type)
        return table[np.asarray(candidates, dtype=np.int64)] @ table[node]


def bipartite_pairs(dataset: Dataset, stream: EdgeStream) -> Dict[str, np.ndarray]:
    """``(n_edges, 2)`` arrays of (query, target) node pairs per relation.

    The query node is the relation's source-role endpoint.  Used by the
    BPR-trained recommendation baselines.
    """
    by_rel: Dict[str, list] = {}
    for e in stream:
        src_type, _ = dataset.schema.endpoints_of(e.edge_type)
        if dataset.node_type_of(e.u) == src_type:
            pair = (e.u, e.v)
        else:
            pair = (e.v, e.u)
        by_rel.setdefault(e.edge_type, []).append(pair)
    return {
        rel: np.asarray(pairs, dtype=np.int64) for rel, pairs in by_rel.items()
    }
