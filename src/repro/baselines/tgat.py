"""TGAT (Xu et al., ICLR 2020), simplified.

Inductive representation learning on temporal graphs: a node's
embedding at time ``t`` is an attention-weighted aggregation of its
temporal neighbours, where each neighbour's key carries a functional
(Bochner) time encoding ``Phi(t - t_e) = cos(omega (t - t_e) + b)``.

Simplification vs. the original: one attention layer with fixed
log-spaced frequencies ``omega`` (the original learns them) and a cap on
the number of most recent neighbours attended over.  Trained with BPR
on temporal edges; inference re-aggregates at the query timestamp, so
the model is genuinely time-aware at evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Adam, Tensor
from repro.autograd.functional import log_sigmoid
from repro.autograd.init import normal_, xavier_uniform
from repro.baselines.base import BaselineModel
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream
from repro.utils.rng import new_rng


class TGAT(BaselineModel):
    """Temporal graph attention with functional time encoding."""

    name = "TGAT"
    is_dynamic = True

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        time_dim: int = 8,
        max_neighbors: int = 8,
        steps: int = 400,
        lr: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.time_dim = time_dim
        self.max_neighbors = max_neighbors
        self.steps = steps
        self.lr = lr
        self._graph = None
        self._base: Optional[np.ndarray] = None
        self._w_v: Optional[np.ndarray] = None
        self._omega = np.logspace(-3, 1, time_dim)

    # ----------------------------------------------------------- aggregation

    def _time_encoding(self, deltas: np.ndarray) -> np.ndarray:
        """``cos(omega * delta)`` rows for an array of intervals."""
        return np.cos(np.outer(np.maximum(deltas, 0.0), self._omega))

    def _embed_node(self, node: int, t: float, base: np.ndarray, w_v: np.ndarray) -> np.ndarray:
        """Attention aggregation of the node's most recent neighbours."""
        nbrs = self._graph.neighbors(node)[-self.max_neighbors :]
        if not nbrs:
            return base[node]
        others = np.asarray([n for n, _, _, _ in nbrs], dtype=np.int64)
        times = np.asarray([te for _, _, te, _ in nbrs])
        keys = np.concatenate([base[others], self._time_encoding(t - times)], axis=1)
        values = keys @ w_v
        scores = values @ base[node] / np.sqrt(self.dim)
        scores -= scores.max()
        attn = np.exp(scores)
        attn /= attn.sum()
        return 0.5 * base[node] + 0.5 * (attn @ values)

    # ----------------------------------------------------------------- train

    def fit(self, stream: EdgeStream) -> None:
        rng = new_rng(self.seed)
        n = self.dataset.num_nodes
        self._graph = self.dataset.build_graph(stream)

        base = normal_((n, self.dim), std=0.1, rng=rng)
        w_v = xavier_uniform((self.dim + self.time_dim, self.dim), rng=rng)

        edges = list(stream)
        if edges:
            optimizer = Adam([base, w_v], lr=self.lr, weight_decay=1e-5)
            order = rng.integers(len(edges), size=self.steps)
            for idx in order:
                e = edges[idx]
                neg = int(rng.integers(n))
                h_u = self._embed_tensor(e.u, e.t, base, w_v)
                h_v = self._embed_tensor(e.v, e.t, base, w_v)
                h_n = self._embed_tensor(neg, e.t, base, w_v)
                pos_score = (h_u * h_v).sum()
                neg_score = (h_u * h_n).sum()
                loss = -log_sigmoid(pos_score - neg_score)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        self._base = base.numpy().copy()
        self._w_v = w_v.numpy().copy()

    def _embed_tensor(self, node: int, t: float, base: Tensor, w_v: Tensor) -> Tensor:
        """Differentiable version of :meth:`_embed_node` for training."""
        nbrs = self._graph.neighbors(node)[-self.max_neighbors :]
        h_self = base.gather_rows([node]).reshape(self.dim)
        if not nbrs:
            return h_self
        others = np.asarray([n for n, _, _, _ in nbrs], dtype=np.int64)
        times = np.asarray([te for _, _, te, _ in nbrs])
        time_enc = Tensor(self._time_encoding(t - times))
        from repro.autograd.tensor import concatenate

        keys = concatenate([base.gather_rows(others), time_enc], axis=1)
        values = keys @ w_v
        scores = values @ h_self * (1.0 / np.sqrt(self.dim))
        from repro.autograd.functional import softmax

        attn = softmax(scores.reshape(1, others.size)).reshape(others.size)
        agg = attn @ values
        return h_self * 0.5 + agg * 0.5

    # ----------------------------------------------------------------- score

    def score(
        self, node: int, candidates: np.ndarray, edge_type: str, t: float
    ) -> np.ndarray:
        if self._base is None:
            raise RuntimeError("TGAT.score() called before fit()")
        h_u = self._embed_node(int(node), t, self._base, self._w_v)
        candidates = np.asarray(candidates, dtype=np.int64)
        return np.asarray(
            [self._embed_node(int(c), t, self._base, self._w_v) @ h_u for c in candidates]
        )
