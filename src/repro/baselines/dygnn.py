"""DyGNN (Ma et al., SIGIR 2020), simplified.

Streaming graph neural network: every arriving edge ``(u, v, t)``
triggers an *update* of the two interacting nodes and a *propagation*
to their neighbours, with the influence of old information decayed by
the elapsed interval.  Node states are the embeddings.

Simplification vs. the original: the LSTM-style update/merge gates are
replaced by a convex time-decayed blend

    h_u <- tanh((1 - beta_u) h_u + beta_u W h_v),
    beta_u = base_gate * g(delta_t),

followed by a decayed additive propagation to recent neighbours.  The
defining mechanism — per-edge streaming state updates with interval
decay, no global retraining — is kept.  A small SGNS-style loss on each
edge keeps the representation predictive.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream
from repro.utils.rng import new_rng


def _g(x: np.ndarray) -> np.ndarray:
    return 1.0 / np.log(np.e + np.maximum(x, 0.0))


class DyGNN(EmbeddingModel):
    """Per-edge streaming updates with interval-decayed gates."""

    name = "DyGNN"
    is_dynamic = True

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        gate: float = 0.5,
        propagate_gate: float = 0.2,
        max_propagation: int = 5,
        lr: float = 0.05,
        negatives: int = 3,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        if not 0.0 <= gate <= 1.0 or not 0.0 <= propagate_gate <= 1.0:
            raise ValueError("gates must lie in [0, 1]")
        self.gate = gate
        self.propagate_gate = propagate_gate
        self.max_propagation = max_propagation
        self.lr = lr
        self.negatives = negatives
        self._graph = None
        self._w: Optional[np.ndarray] = None

    def fit(self, stream: EdgeStream) -> None:
        rng = new_rng(self.seed)
        n = self.dataset.num_nodes
        self.embeddings = rng.normal(0.0, 0.1, size=(n, self.dim))
        self._w = rng.normal(0.0, 1.0 / np.sqrt(self.dim), size=(self.dim, self.dim))
        self._graph = self.dataset.empty_graph()
        self._seen = EdgeStream([])
        self.partial_fit(stream)

    def partial_fit(self, stream: EdgeStream) -> None:
        if self._graph is None:
            self.fit(stream)
            return
        emb = self.embeddings
        n = emb.shape[0]
        for e in stream:
            dt_u = e.t - self._graph.last_interaction_time(e.u)
            dt_v = e.t - self._graph.last_interaction_time(e.v)
            beta_u = self.gate * float(_g(dt_u if np.isfinite(dt_u) else 0.0))
            beta_v = self.gate * float(_g(dt_v if np.isfinite(dt_v) else 0.0))
            h_u, h_v = emb[e.u].copy(), emb[e.v].copy()
            emb[e.u] = np.tanh((1 - beta_u) * h_u + beta_u * (self._w @ h_v))
            emb[e.v] = np.tanh((1 - beta_v) * h_v + beta_v * (self._w @ h_u))
            # Propagate a decayed message to recent neighbours.
            for node, fresh in ((e.u, emb[e.v]), (e.v, emb[e.u])):
                nbrs = self._graph.neighbors(node)[-self.max_propagation :]
                for other, _, t_e, _ in nbrs:
                    decay = self.propagate_gate * float(_g(e.t - t_e))
                    emb[other] = (1 - decay) * emb[other] + decay * fresh
            # SGNS-style predictive signal: pull the pair together, push
            # random negatives apart.
            for a, b in ((e.u, e.v), (e.v, e.u)):
                s = float(emb[a] @ emb[b])
                coeff = 1.0 / (1.0 + np.exp(np.clip(s, -500, 500)))
                emb[a] += self.lr * coeff * emb[b]
                for _ in range(self.negatives):
                    neg = int(self.rng.integers(n))
                    s_neg = float(emb[a] @ emb[neg])
                    c_neg = 1.0 / (1.0 + np.exp(-np.clip(s_neg, -500, 500)))
                    emb[a] -= self.lr * c_neg * emb[neg]
            self._graph.add_edge(e.u, e.v, e.edge_type, e.t)
