"""MB-GMN (Xia et al., SIGIR 2021), simplified.

Multi-behaviour recommendation with a graph meta network: each
behaviour gets its own light graph convolution over its behaviour
adjacency, and a meta network transfers knowledge across behaviours by
generating a behaviour-specific mixing of the cross-behaviour summary:

    E_r = LightGCN_r(E) + (mean_r' LightGCN_r'(E)) @ W_meta_r.

Simplification vs. the original: the meta-knowledge learner that
generates per-*user* weights is reduced to per-*behaviour* generated
transforms — cross-behaviour transfer, the mechanism Table V credits it
for, is kept.  Trained with BPR over all behaviours jointly.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.autograd import Tensor
from repro.autograd.init import normal_, xavier_uniform
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import (
    BPRSampler,
    normalized_adjacency,
    sparse_matmul,
    train_bpr,
)
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class MBGMN(EmbeddingModel):
    """Per-behaviour graph convolutions with meta knowledge transfer."""

    name = "MB-GMN"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_layers: int = 2,
        steps: int = 250,
        batch_size: int = 128,
        lr: float = 0.005,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_layers = num_layers
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        relations = list(self.dataset.schema.edge_types)
        adjs = {
            r: normalized_adjacency(n, stream, edge_types=[r]) for r in relations
        }
        base = normal_((n, self.dim), std=0.1, rng=self.rng)
        meta = {
            r: xavier_uniform((self.dim, self.dim), rng=self.rng) for r in relations
        }

        def behaviour_view(rel: str) -> Tensor:
            layer = base
            total = base
            for _ in range(self.num_layers):
                layer = sparse_matmul(adjs[rel], layer)
                total = total + layer
            return total * (1.0 / (self.num_layers + 1))

        def all_tables() -> Dict[str, Tensor]:
            views = {r: behaviour_view(r) for r in relations}
            summary = views[relations[0]]
            for r in relations[1:]:
                summary = summary + views[r]
            summary = summary * (1.0 / len(relations))
            return {r: views[r] + summary @ meta[r] for r in relations}

        pairs = bipartite_pairs(self.dataset, stream)
        if pairs:
            sampler = BPRSampler(self.dataset, pairs, rng=self.rng)
            train_bpr(
                [base] + [meta[r] for r in relations],
                propagate=lambda: all_tables()[relations[0]],
                sampler=sampler,
                steps=self.steps,
                batch_size=self.batch_size,
                lr=self.lr,
                relation_tables=all_tables,
            )
        self.embeddings = {r: t.numpy().copy() for r, t in all_tables().items()}
        self.embeddings[None] = base.numpy().copy()
