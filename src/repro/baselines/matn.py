"""MATN (Xia et al., SIGIR 2020), simplified.

Multiplex behavioural relation learning with a memory-augmented
attention network: behaviours share base embeddings but each behaviour
attends over a bank of ``K`` global memory transforms, giving
behaviour-specific views

    E_r = E + sum_k softmax(a_r)_k (E @ M_k).

Simplification vs. the original: the transformer-style cross-behaviour
encoder is reduced to the per-behaviour memory attention above (the
memory-unit mechanism that differentiates user-item relations is kept);
gated fusion is absorbed by the residual sum.  Trained with BPR per
behaviour.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.autograd import Tensor
from repro.autograd.functional import softmax
from repro.autograd.init import normal_, xavier_uniform
from repro.baselines.base import EmbeddingModel, bipartite_pairs
from repro.baselines.gcn_common import BPRSampler, train_bpr
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream


class MATN(EmbeddingModel):
    """Memory-augmented attention over behaviour types."""

    name = "MATN"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_memories: int = 4,
        steps: int = 250,
        batch_size: int = 128,
        lr: float = 0.005,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_memories = num_memories
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr

    def fit(self, stream: EdgeStream) -> None:
        n = self.dataset.num_nodes
        base = normal_((n, self.dim), std=0.1, rng=self.rng)
        memories = [
            xavier_uniform((self.dim, self.dim), rng=self.rng)
            for _ in range(self.num_memories)
        ]
        relations = list(self.dataset.schema.edge_types)
        attn = {r: normal_((self.num_memories,), std=0.1, rng=self.rng) for r in relations}

        def relation_table(rel: str) -> Tensor:
            weights = softmax(attn[rel].reshape(1, self.num_memories))
            weights = weights.reshape(self.num_memories)
            out = base
            for k, mem in enumerate(memories):
                out = out + (base @ mem) * weights.gather_rows([k])
            return out

        def all_tables() -> Dict[str, Tensor]:
            return {r: relation_table(r) for r in relations}

        pairs = bipartite_pairs(self.dataset, stream)
        if pairs:
            sampler = BPRSampler(self.dataset, pairs, rng=self.rng)
            params = [base] + memories + [attn[r] for r in relations]
            train_bpr(
                params,
                propagate=lambda: relation_table(relations[0]),
                sampler=sampler,
                steps=self.steps,
                batch_size=self.batch_size,
                lr=self.lr,
                relation_tables=all_tables,
            )
        self.embeddings = {r: relation_table(r).numpy().copy() for r in relations}
        self.embeddings[None] = base.numpy().copy()
