"""DeepWalk (Perozzi et al., KDD 2014).

Uniform truncated random walks over the (type-blind, time-blind) graph
feed a skip-gram model.  The paper groups it under static homogeneous
embedding: it ignores edge types and timestamps entirely, but — not
being a neighbour-aggregation method — it is free of neighbourhood
disturbance, which is why it stays competitive in Table V.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.baselines.sgns import SkipGramTrainer
from repro.datasets.base import Dataset
from repro.graph.sampling import random_walk_corpus
from repro.graph.streams import EdgeStream


class DeepWalk(EmbeddingModel):
    """Random-walk + skip-gram embeddings of the collapsed static graph."""

    name = "DeepWalk"

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 32,
        num_walks: int = 5,
        walk_length: int = 8,
        window: int = 3,
        negatives: int = 5,
        epochs: int = 2,
        seed: int = 0,
    ):
        super().__init__(dataset, dim=dim, seed=seed)
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs

    def fit(self, stream: EdgeStream) -> None:
        graph = self.dataset.build_graph(stream)
        corpus = random_walk_corpus(
            graph, self.num_walks, self.walk_length, rng=self.rng
        )
        trainer = SkipGramTrainer(
            num_nodes=graph.num_nodes,
            dim=self.dim,
            negatives=self.negatives,
            window=self.window,
            noise_weights=graph.degrees().astype(np.float64) ** 0.75,
            rng=self.rng,
        )
        trainer.train_corpus(corpus, epochs=self.epochs)
        self.embeddings = trainer.embeddings()
