"""Dataset containers, synthetic DMHG generators, and the paper-dataset zoo.

The paper evaluates on six real logs (UCI, Amazon, Last.fm, MovieLens,
Taobao, Kuaishou) that are not redistributable; :mod:`repro.datasets.zoo`
generates synthetic equivalents whose schemas, metapaths and qualitative
dynamics (interest drift, multiplex behaviours, popularity skew,
static-vs-streaming) mirror each original per Tables III and IV.
"""

from repro.datasets.base import Dataset
from repro.datasets.loaders import load_edge_tsv, save_edge_tsv
from repro.datasets.synthetic import BehaviorSpec, SyntheticConfig, generate
from repro.datasets.zoo import (
    DATASET_BUILDERS,
    amazon,
    kuaishou,
    lastfm,
    load_dataset,
    movielens,
    taobao,
    uci,
)

__all__ = [
    "Dataset",
    "BehaviorSpec",
    "SyntheticConfig",
    "generate",
    "DATASET_BUILDERS",
    "load_dataset",
    "uci",
    "amazon",
    "lastfm",
    "movielens",
    "taobao",
    "kuaishou",
    "load_edge_tsv",
    "save_edge_tsv",
]
