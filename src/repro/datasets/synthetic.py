"""Latent-factor synthetic DMHG generator.

Produces interaction streams with the structural properties that drive
the paper's findings, each individually controllable:

* **interest drift** — user factors random-walk over time and
  occasionally jump to a fresh topic (the paper's Figure 1 "Bob drifts
  from comedy to sports"); static models cannot track this,
* **multiplex behaviours** — one interaction may emit several edge types
  whose likelihood depends on affinity, so weaker behaviours (page view)
  are noisy and stronger ones (buy) are informative,
* **popularity skew** — Zipf-distributed item exposure and user activity,
* **item freshness** — optional exponential decay of item exposure with
  age (short-video platforms),
* **static graphs** — one shared timestamp for every edge (Amazon), and
* **homogeneous graphs** — a single node type interacting with itself
  (UCI messages, Amazon product co-links).

The generator is the substitution substrate for the paper's six real
logs; see DESIGN.md section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.graph.metapath import MultiplexMetapath
from repro.graph.schema import GraphSchema
from repro.graph.streams import EdgeStream, StreamEdge
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class BehaviorSpec:
    """One user behaviour (edge type) and how affinity gates it.

    Parameters
    ----------
    name:
        Edge type name.
    base_rate:
        Baseline propensity of the behaviour, independent of affinity.
    affinity_gain:
        How strongly user-item affinity increases the behaviour's odds.
        Strong behaviours (buy, like) have high gain: they fire mostly on
        well-aligned pairs, making them the informative signal multiplex
        models exploit.
    """

    name: str
    base_rate: float = 1.0
    affinity_gain: float = 0.0


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic world.  Defaults give a small dense stream."""

    name: str = "synthetic"
    mode: str = "bipartite"  # "bipartite" | "homogeneous"
    n_users: int = 100
    n_items: int = 150
    n_events: int = 2000
    d_latent: int = 12
    n_topics: int = 6
    behaviors: Sequence[BehaviorSpec] = field(
        default_factory=lambda: (BehaviorSpec("interact"),)
    )
    primary_behavior: Optional[str] = None  # always emitted; None = sample one
    drift_rate: float = 0.0  # stddev of per-event user factor random walk
    shift_prob: float = 0.0  # per-event probability of a topic jump
    echo_prob: float = 0.0  # probability of re-emitting a recent pair under another relation
    #: how much behaviours judge affinity through *different* latent
    #: subspaces (0 = all behaviours share one notion of preference,
    #: 1 = each behaviour gates preference through its own random mask).
    #: Non-zero divergence is what makes relation-specific modelling
    #: (SUPA's context embeddings, Table VIII) genuinely informative.
    behavior_divergence: float = 0.0
    popularity_skew: float = 1.0  # Zipf exponent for item exposure
    activity_skew: float = 1.0  # Zipf exponent for user activity
    temperature: float = 0.7  # softmax temperature of item choice
    candidate_pool: int = 30  # item subsample scored per event
    static: bool = False  # all edges share timestamp 1.0
    freshness_decay: float = 0.0  # exponential age penalty on item exposure
    with_authors: bool = False  # adds author nodes + upload edges
    n_authors: int = 0
    upload_edge_type: str = "upload"
    user_type: str = "user"
    item_type: str = "item"
    author_type: str = "author"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("bipartite", "homogeneous"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.n_events < 1:
            raise ValueError("n_events must be positive")
        if not self.behaviors:
            raise ValueError("at least one behaviour is required")
        if self.with_authors and self.n_authors < 1:
            raise ValueError("with_authors requires n_authors >= 1")


def _zipf_weights(n: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-skew
    return w / w.sum()


def _behavior_probs(
    behaviors: Sequence[BehaviorSpec], affinities: Sequence[float]
) -> np.ndarray:
    """Categorical behaviour distribution given per-behaviour affinity."""
    logits = np.array(
        [
            np.log(b.base_rate + 1e-12) + b.affinity_gain * a
            for b, a in zip(behaviors, affinities)
        ]
    )
    logits -= logits.max()
    p = np.exp(logits)
    return p / p.sum()


def _behavior_masks(
    num_behaviors: int, dim: int, divergence: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-behaviour latent gates mixing a shared view with a private one.

    Each mask keeps mean ~1 so behaviour frequencies stay comparable:
    ``m_r = (1 - divergence) + divergence * 2 * gates_r``.
    """
    if not 0.0 <= divergence <= 1.0:
        raise ValueError(f"behavior_divergence must lie in [0, 1], got {divergence}")
    if divergence == 0.0:
        return np.ones((num_behaviors, dim), dtype=np.float64)
    gates = rng.random((num_behaviors, dim)) < 0.5
    return (1.0 - divergence) + divergence * 2.0 * gates


def _build_schema(cfg: SyntheticConfig) -> Tuple[GraphSchema, List[Tuple[str, int]]]:
    behaviors = [b.name for b in cfg.behaviors]
    if cfg.mode == "homogeneous":
        schema = GraphSchema.create([cfg.user_type], behaviors)
        return schema, [(cfg.user_type, cfg.n_users)]
    node_types = [cfg.user_type, cfg.item_type]
    endpoints = {b: (cfg.user_type, cfg.item_type) for b in behaviors}
    edge_types = list(behaviors)
    nodes = [(cfg.user_type, cfg.n_users), (cfg.item_type, cfg.n_items)]
    if cfg.with_authors:
        node_types.append(cfg.author_type)
        edge_types.append(cfg.upload_edge_type)
        endpoints[cfg.upload_edge_type] = (cfg.author_type, cfg.item_type)
        nodes.append((cfg.author_type, cfg.n_authors))
    schema = GraphSchema.create(node_types, edge_types, endpoints)
    return schema, nodes


def default_metapaths(cfg: SyntheticConfig) -> List[MultiplexMetapath]:
    """Table IV-style metapaths for the generated schema.

    Bipartite: ``U -R-> I -R-> U`` and ``I -R-> U -R-> I`` over all user
    behaviours, plus author paths (``A -U-> V -U-> A``) when present.
    Homogeneous: ``U -R-> U``.
    """
    behaviors = [b.name for b in cfg.behaviors]
    if cfg.mode == "homogeneous":
        return [
            MultiplexMetapath.create(
                [cfg.user_type, cfg.user_type, cfg.user_type],
                [behaviors, behaviors],
            )
        ]
    u, i = cfg.user_type, cfg.item_type
    paths = [
        MultiplexMetapath.create([u, i, u], [behaviors, behaviors]),
        MultiplexMetapath.create([i, u, i], [behaviors, behaviors]),
    ]
    if cfg.with_authors:
        a, up = cfg.author_type, [cfg.upload_edge_type]
        paths.append(MultiplexMetapath.create([a, i, a], [up, up]))
        paths.append(MultiplexMetapath.create([i, a, i], [up, up]))
    return paths


def generate(cfg: SyntheticConfig) -> Dataset:
    """Generate a :class:`Dataset` from ``cfg`` (deterministic per seed)."""
    rng = new_rng(cfg.seed)
    schema, nodes_by_type = _build_schema(cfg)

    topics = rng.normal(0.0, 1.0, size=(cfg.n_topics, cfg.d_latent))
    user_factors = _init_entity_factors(cfg.n_users, topics, rng)

    if cfg.mode == "homogeneous":
        edges = _generate_homogeneous(cfg, user_factors, topics, rng)
    else:
        edges = _generate_bipartite(cfg, user_factors, topics, rng)

    # Structural relations (author uploads) are not recommendation
    # targets: ranking metrics evaluate user behaviours only.
    targets = [b.name for b in cfg.behaviors] if cfg.with_authors else None
    return Dataset(
        name=cfg.name,
        schema=schema,
        nodes_by_type=nodes_by_type,
        stream=EdgeStream(edges),
        metapaths=default_metapaths(cfg),
        target_edge_types=targets,
    )


def _init_entity_factors(
    count: int, topics: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    assignment = rng.integers(topics.shape[0], size=count)
    return topics[assignment] + rng.normal(0.0, 0.35, size=(count, topics.shape[1]))


def _timestamp(cfg: SyntheticConfig, event_index: int, rng: np.random.Generator) -> float:
    if cfg.static:
        return 1.0
    return float(event_index) + float(rng.uniform(0.0, 0.5))


def _drift_user(
    cfg: SyntheticConfig,
    user_factors: np.ndarray,
    user: int,
    topics: np.ndarray,
    rng: np.random.Generator,
) -> None:
    if cfg.shift_prob > 0 and rng.random() < cfg.shift_prob:
        topic = int(rng.integers(topics.shape[0]))
        user_factors[user] = topics[topic] + rng.normal(0.0, 0.35, size=topics.shape[1])
    elif cfg.drift_rate > 0:
        user_factors[user] += rng.normal(0.0, cfg.drift_rate, size=topics.shape[1])


def _generate_bipartite(
    cfg: SyntheticConfig,
    user_factors: np.ndarray,
    topics: np.ndarray,
    rng: np.random.Generator,
) -> List[StreamEdge]:
    n_users, n_items = cfg.n_users, cfg.n_items
    item_factors = _init_entity_factors(n_items, topics, rng)
    user_offset, item_offset = 0, n_users
    author_offset = n_users + n_items

    authors = None
    item_author = None
    if cfg.with_authors:
        authors = _init_entity_factors(cfg.n_authors, topics, rng)
        item_author = rng.integers(cfg.n_authors, size=n_items)
        # Videos inherit part of their author's style.
        item_factors = 0.6 * item_factors + 0.4 * authors[item_author]

    horizon = 1.0 if cfg.static else float(cfg.n_events)
    if cfg.static or cfg.freshness_decay <= 0:
        item_birth = np.zeros(n_items, dtype=np.float64)
    else:
        item_birth = np.sort(rng.uniform(0.0, 0.9 * horizon, size=n_items))

    pop_weights = _zipf_weights(n_items, cfg.popularity_skew)[rng.permutation(n_items)]
    activity = _zipf_weights(n_users, cfg.activity_skew)[rng.permutation(n_users)]

    behaviors = list(cfg.behaviors)
    behavior_masks = _behavior_masks(
        len(behaviors), cfg.d_latent, cfg.behavior_divergence, rng
    )
    edges: List[StreamEdge] = []
    recent_pairs: List[Tuple[int, int]] = []

    if cfg.with_authors:
        for item in range(n_items):
            t_birth = 1.0 if cfg.static else float(item_birth[item])
            edges.append(
                StreamEdge(
                    author_offset + int(item_author[item]),
                    item_offset + item,
                    cfg.upload_edge_type,
                    t_birth,
                )
            )

    users_per_event = rng.choice(n_users, size=cfg.n_events, p=activity)
    for event in range(cfg.n_events):
        user = int(users_per_event[event])
        t = _timestamp(cfg, event, rng)
        _drift_user(cfg, user_factors, user, topics, rng)

        if cfg.echo_prob > 0 and recent_pairs and rng.random() < cfg.echo_prob:
            # Re-interact with a recently seen pair under another relation,
            # producing the cross-relation repetition of Section IV-E.
            u2, item = recent_pairs[int(rng.integers(len(recent_pairs)))]
            user = u2
        else:
            item = _choose_item(
                cfg, user_factors[user], item_factors, pop_weights, item_birth, t, rng
            )

        affinities = (
            (user_factors[user] * behavior_masks) @ item_factors[item]
            / cfg.d_latent
        )
        probs = _behavior_probs(behaviors, affinities)
        if cfg.primary_behavior is not None:
            chosen = cfg.primary_behavior
            # Stronger correlated behaviours may co-fire on aligned pairs.
            for spec, p in zip(behaviors, probs):
                if spec.name != chosen and rng.random() < p * 0.5:
                    edges.append(
                        StreamEdge(user, item_offset + item, spec.name, t + 0.01)
                    )
        else:
            chosen = behaviors[int(rng.choice(len(behaviors), p=probs))].name
        edges.append(StreamEdge(user, item_offset + item, chosen, t))

        recent_pairs.append((user, item))
        if len(recent_pairs) > 50:
            recent_pairs.pop(0)
    return edges


def _choose_item(
    cfg: SyntheticConfig,
    user_vec: np.ndarray,
    item_factors: np.ndarray,
    pop_weights: np.ndarray,
    item_birth: np.ndarray,
    t: float,
    rng: np.random.Generator,
) -> int:
    weights = pop_weights.copy()
    if not cfg.static and (cfg.freshness_decay > 0):
        age = np.maximum(t - item_birth, 0.0)
        alive = item_birth <= t
        weights = np.where(alive, weights * np.exp(-cfg.freshness_decay * age), 0.0)
        if weights.sum() <= 0:
            weights = np.where(alive, pop_weights, 0.0)
            if weights.sum() <= 0:
                weights = pop_weights.copy()
    weights = weights / weights.sum()
    nonzero = int(np.count_nonzero(weights))
    pool_size = min(cfg.candidate_pool, item_factors.shape[0], nonzero)
    pool = rng.choice(item_factors.shape[0], size=pool_size, replace=False, p=weights)
    scores = item_factors[pool] @ user_vec / (cfg.temperature * np.sqrt(cfg.d_latent))
    scores -= scores.max()
    p = np.exp(scores)
    p /= p.sum()
    return int(pool[int(rng.choice(pool_size, p=p))])


def _generate_homogeneous(
    cfg: SyntheticConfig,
    user_factors: np.ndarray,
    topics: np.ndarray,
    rng: np.random.Generator,
) -> List[StreamEdge]:
    n = cfg.n_users
    activity = _zipf_weights(n, cfg.activity_skew)[rng.permutation(n)]
    behaviors = list(cfg.behaviors)
    behavior_masks = _behavior_masks(
        len(behaviors), cfg.d_latent, cfg.behavior_divergence, rng
    )
    edges: List[StreamEdge] = []
    senders = rng.choice(n, size=cfg.n_events, p=activity)
    for event in range(cfg.n_events):
        sender = int(senders[event])
        t = _timestamp(cfg, event, rng)
        _drift_user(cfg, user_factors, sender, topics, rng)
        pool_size = min(cfg.candidate_pool, n - 1)
        pool = rng.choice(n, size=pool_size, replace=False)
        pool = pool[pool != sender]
        if pool.size == 0:
            continue
        scores = user_factors[pool] @ user_factors[sender]
        scores /= cfg.temperature * np.sqrt(cfg.d_latent)
        scores -= scores.max()
        p = np.exp(scores)
        p /= p.sum()
        receiver = int(pool[int(rng.choice(pool.size, p=p))])
        affinities = (
            (user_factors[sender] * behavior_masks) @ user_factors[receiver]
            / cfg.d_latent
        )
        probs = _behavior_probs(behaviors, affinities)
        chosen = behaviors[int(rng.choice(len(behaviors), p=probs))].name
        edges.append(StreamEdge(sender, receiver, chosen, t))
    return edges
