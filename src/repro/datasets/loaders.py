"""Edge-list IO so users can bring their own interaction logs.

The format is a TSV with header ``u  v  edge_type  t`` — the obvious
serialisation of a DMHG edge stream.  Node ids must already follow the
contiguous-per-type layout the accompanying dataset declares.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.datasets.base import Dataset
from repro.graph.metapath import MultiplexMetapath
from repro.graph.schema import GraphSchema
from repro.graph.streams import EdgeStream, StreamEdge

_HEADER = "u\tv\tedge_type\tt"


def save_edge_tsv(stream: EdgeStream, path: str) -> None:
    """Write ``stream`` to ``path`` as a TSV edge list."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_HEADER + "\n")
        for e in stream:
            fh.write(f"{e.u}\t{e.v}\t{e.edge_type}\t{e.t!r}\n")


def load_edge_tsv(path: str) -> EdgeStream:
    """Read a TSV edge list written by :func:`save_edge_tsv`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    edges: List[StreamEdge] = []
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if header != _HEADER:
            raise ValueError(
                f"unexpected header {header!r}; expected {_HEADER!r}"
            )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 columns, got {len(parts)}")
            edges.append(
                StreamEdge(int(parts[0]), int(parts[1]), parts[2], float(parts[3]))
            )
    return EdgeStream(edges)


def dataset_from_edges(
    name: str,
    schema: GraphSchema,
    nodes_by_type: Sequence[Tuple[str, int]],
    stream: EdgeStream,
    metapaths: Optional[Sequence[MultiplexMetapath]] = None,
) -> Dataset:
    """Assemble a :class:`Dataset` from user-supplied pieces."""
    return Dataset(
        name=name,
        schema=schema,
        nodes_by_type=list(nodes_by_type),
        stream=stream,
        metapaths=list(metapaths or []),
    )
