"""The :class:`Dataset` container binding a DMHG stream to its protocols.

A dataset owns the schema, the node-id layout (contiguous per type), the
chronological edge stream, and the predefined multiplex metapath schemas
(Table IV).  It derives the graph objects, the chronological splits, and
the ranking queries that the evaluation stack consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.ranking import RankingQuery
from repro.graph.dmhg import DMHG
from repro.graph.metapath import MultiplexMetapath
from repro.graph.schema import GraphSchema
from repro.graph.streams import EdgeStream, StreamEdge


@dataclass
class Dataset:
    """A DMHG recommendation dataset.

    Parameters
    ----------
    name:
        Dataset identifier (e.g. ``"uci"``).
    schema:
        Node/edge type universe.
    nodes_by_type:
        Ordered ``(type, count)`` pairs; node ids are contiguous per type
        in this order, so id ranges are derivable without a lookup table.
    stream:
        The full chronological edge stream.
    metapaths:
        The predefined multiplex metapath schema set of Table IV.
    """

    name: str
    schema: GraphSchema
    nodes_by_type: List[Tuple[str, int]]
    stream: EdgeStream
    metapaths: List[MultiplexMetapath] = field(default_factory=list)
    #: edge types evaluated as recommendation targets; ``None`` = all.
    #: Structural relations (e.g. author-video uploads) are excluded
    #: here so ranking metrics measure the actual recommendation task.
    target_edge_types: Optional[List[str]] = None

    def __post_init__(self) -> None:
        offsets: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for node_type, count in self.nodes_by_type:
            self.schema.node_type_id(node_type)  # validates
            if count < 0:
                raise ValueError(f"negative node count for {node_type!r}")
            offsets[node_type] = (cursor, cursor + count)
            cursor += count
        self._type_ranges = offsets
        self._num_nodes = cursor
        for mp in self.metapaths:
            mp.validate_against(self.schema)
        if self.target_edge_types is not None:
            for r in self.target_edge_types:
                self.schema.edge_type_id(r)  # validates

    # -------------------------------------------------------------- structure

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self.stream)

    def type_range(self, node_type: str) -> Tuple[int, int]:
        """Half-open id range ``[lo, hi)`` of ``node_type``."""
        try:
            return self._type_ranges[node_type]
        except KeyError:
            raise KeyError(
                f"dataset {self.name!r} has no nodes of type {node_type!r}"
            ) from None

    def nodes_of_type(self, node_type: str) -> np.ndarray:
        lo, hi = self.type_range(node_type)
        return np.arange(lo, hi, dtype=np.int64)

    def node_type_of(self, node: int) -> str:
        for node_type, (lo, hi) in self._type_ranges.items():
            if lo <= node < hi:
                return node_type
        raise IndexError(f"node {node} outside dataset ({self._num_nodes} nodes)")

    # ----------------------------------------------------------------- graphs

    def build_graph(
        self,
        stream: Optional[EdgeStream] = None,
        max_neighbors: Optional[int] = None,
    ) -> DMHG:
        """Materialise a graph holding ``stream`` (default: all edges)."""
        stream = self.stream if stream is None else stream
        return stream.build_graph(self.schema, self.nodes_by_type, max_neighbors)

    def empty_graph(self, max_neighbors: Optional[int] = None) -> DMHG:
        """All nodes, no edges — the starting state for streaming training."""
        return EdgeStream([]).build_graph(self.schema, self.nodes_by_type, max_neighbors)

    def split(
        self, train_frac: float = 0.80, valid_frac: float = 0.01
    ) -> Tuple[EdgeStream, EdgeStream, EdgeStream]:
        """The paper's 80% / 1% / 19% chronological split."""
        return self.stream.chronological_split(train_frac, valid_frac)

    # ---------------------------------------------------------------- queries

    def ranking_target(self, edge: StreamEdge) -> Tuple[int, int, np.ndarray]:
        """``(query_node, true_node, candidates)`` for a held-out edge.

        The query node is the edge's source-role endpoint; candidates are
        every node of the target-role type (the full catalogue).
        """
        src_type, dst_type = self.schema.endpoints_of(edge.edge_type)
        u_type = self.node_type_of(edge.u)
        if u_type == src_type:
            query, true = edge.u, edge.v
        elif u_type == dst_type:
            query, true = edge.v, edge.u
        else:
            raise ValueError(
                f"edge {edge} endpoints do not match declared types "
                f"({src_type} -> {dst_type})"
            )
        return query, true, self.nodes_of_type(dst_type if query == edge.u else src_type)

    def ranking_queries(
        self, stream: EdgeStream, edge_types: Optional[List[str]] = None
    ) -> List[RankingQuery]:
        """One :class:`RankingQuery` per target edge of ``stream``.

        ``edge_types`` overrides the dataset's ``target_edge_types``;
        edges of non-target types contribute no query.
        """
        wanted = edge_types if edge_types is not None else self.target_edge_types
        queries = []
        for edge in stream:
            if wanted is not None and edge.edge_type not in wanted:
                continue
            query, true, candidates = self.ranking_target(edge)
            queries.append(
                RankingQuery(
                    node=query,
                    true_node=true,
                    candidates=candidates,
                    edge_type=edge.edge_type,
                    t=edge.t,
                )
            )
        return queries

    # ------------------------------------------------------------- statistics

    def statistics(self) -> Dict[str, int]:
        """|V|, |E|, |O|, |R|, |T| — the Table III row of this dataset."""
        ts = self.stream.timestamps()
        return {
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|O|": self.schema.num_node_types,
            "|R|": self.schema.num_edge_types,
            "|T|": int(np.unique(ts).size) if ts.size else 0,
        }

    def describe(self) -> str:
        stats = self.statistics()
        paths = "; ".join(mp.describe() for mp in self.metapaths) or "(none)"
        return (
            f"{self.name}: |V|={stats['|V|']}, |E|={stats['|E|']}, "
            f"|O|={stats['|O|']}, |R|={stats['|R|']}, |T|={stats['|T|']}\n"
            f"  metapaths: {paths}"
        )

    def subset(self, stream: EdgeStream, name: Optional[str] = None) -> "Dataset":
        """A dataset view over a different stream (same nodes/schema)."""
        return Dataset(
            name=name or self.name,
            schema=self.schema,
            nodes_by_type=list(self.nodes_by_type),
            stream=stream,
            metapaths=list(self.metapaths),
            target_edge_types=(
                list(self.target_edge_types)
                if self.target_edge_types is not None
                else None
            ),
        )
