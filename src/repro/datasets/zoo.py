"""Synthetic equivalents of the paper's six evaluation datasets.

Each builder mirrors its original's schema and qualitative dynamics
(Tables III/IV), scaled down so CPU experiments finish in minutes:

========== ================= ======= ===== ============================
dataset    node types        |R|     time  character
========== ================= ======= ===== ============================
uci        user              1       yes   homogeneous message stream
amazon     product           2       no    static co-purchase links
lastfm     user, artist      1       yes   long-tail listening habits
movielens  user, movie       2       yes   dense ratings, interest drift
taobao     user, item        4       yes   sparse multi-behaviour log
kuaishou   user, video,      5       yes   short-video platform with
           author                          uploads + item freshness
========== ================= ======= ===== ============================

``scale`` multiplies node and event counts (1.0 = test-sized defaults).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.base import Dataset
from repro.datasets.synthetic import BehaviorSpec, SyntheticConfig, generate
from repro.utils.rng import derive_seed


def _scaled(base: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(base * scale)))


def uci(scale: float = 1.0, seed: int = 0) -> Dataset:
    """UCI-style homogeneous streaming message network (|O|=1, |R|=1)."""
    cfg = SyntheticConfig(
        name="uci",
        mode="homogeneous",
        user_type="user",
        n_users=_scaled(180, scale),
        n_events=_scaled(4000, scale),
        behaviors=(BehaviorSpec("communicate"),),
        drift_rate=0.03,
        shift_prob=0.004,
        activity_skew=1.1,
        temperature=0.6,
        seed=derive_seed(seed, 1),
    )
    return generate(cfg)


def amazon(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Amazon-style static product co-link graph (|O|=1, |R|=2, |T|=1)."""
    cfg = SyntheticConfig(
        name="amazon",
        mode="homogeneous",
        user_type="product",
        n_users=_scaled(250, scale),
        n_events=_scaled(5000, scale),
        behaviors=(
            BehaviorSpec("also_view", base_rate=1.0, affinity_gain=0.5),
            BehaviorSpec("also_buy", base_rate=0.4, affinity_gain=2.0),
        ),
        behavior_divergence=0.4,
        static=True,
        activity_skew=0.9,
        temperature=0.5,
        seed=derive_seed(seed, 2),
    )
    return generate(cfg)


def lastfm(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Last.fm-style user-artist listening stream (|O|=2, |R|=1)."""
    cfg = SyntheticConfig(
        name="lastfm",
        mode="bipartite",
        user_type="user",
        item_type="artist",
        n_users=_scaled(120, scale),
        n_items=_scaled(400, scale),
        n_events=_scaled(6000, scale),
        behaviors=(BehaviorSpec("listen"),),
        drift_rate=0.015,
        shift_prob=0.002,
        popularity_skew=1.3,
        activity_skew=1.1,
        seed=derive_seed(seed, 3),
    )
    return generate(cfg)


def movielens(scale: float = 1.0, seed: int = 0) -> Dataset:
    """MovieLens-style rating/tagging stream with interest drift (|R|=2)."""
    cfg = SyntheticConfig(
        name="movielens",
        mode="bipartite",
        user_type="user",
        item_type="movie",
        n_users=_scaled(120, scale),
        n_items=_scaled(300, scale),
        n_events=_scaled(8000, scale),
        behaviors=(
            BehaviorSpec("rate", base_rate=1.0, affinity_gain=0.5),
            BehaviorSpec("tag", base_rate=0.25, affinity_gain=1.5),
        ),
        behavior_divergence=0.5,
        drift_rate=0.025,
        shift_prob=0.005,
        echo_prob=0.05,
        popularity_skew=1.1,
        seed=derive_seed(seed, 4),
    )
    return generate(cfg)


def taobao(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Taobao-style sparse multi-behaviour e-commerce log (|R|=4)."""
    cfg = SyntheticConfig(
        name="taobao",
        mode="bipartite",
        user_type="user",
        item_type="item",
        n_users=_scaled(150, scale),
        n_items=_scaled(300, scale),
        n_events=_scaled(2500, scale),
        behaviors=(
            BehaviorSpec("page_view", base_rate=1.0, affinity_gain=0.2),
            BehaviorSpec("cart", base_rate=0.25, affinity_gain=1.2),
            BehaviorSpec("favorite", base_rate=0.2, affinity_gain=1.5),
            BehaviorSpec("buy", base_rate=0.15, affinity_gain=2.0),
        ),
        behavior_divergence=0.5,
        drift_rate=0.01,
        echo_prob=0.08,
        popularity_skew=1.2,
        seed=derive_seed(seed, 5),
    )
    return generate(cfg)


def kuaishou(scale: float = 1.0, seed: int = 0) -> Dataset:
    """Kuaishou-style short-video platform (|O|=3, |R|=5, item freshness)."""
    cfg = SyntheticConfig(
        name="kuaishou",
        mode="bipartite",
        user_type="user",
        item_type="video",
        author_type="author",
        with_authors=True,
        n_authors=_scaled(40, scale),
        n_users=_scaled(120, scale),
        n_items=_scaled(500, scale),
        n_events=_scaled(8000, scale),
        behaviors=(
            BehaviorSpec("watch", base_rate=1.0, affinity_gain=0.3),
            BehaviorSpec("like", base_rate=0.3, affinity_gain=1.5),
            BehaviorSpec("forward", base_rate=0.1, affinity_gain=1.8),
            BehaviorSpec("comment", base_rate=0.15, affinity_gain=1.6),
        ),
        behavior_divergence=0.5,
        upload_edge_type="upload",
        drift_rate=0.03,
        shift_prob=0.006,
        freshness_decay=0.002,
        popularity_skew=1.25,
        seed=derive_seed(seed, 6),
    )
    return generate(cfg)


DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    "uci": uci,
    "amazon": amazon,
    "lastfm": lastfm,
    "movielens": movielens,
    "taobao": taobao,
    "kuaishou": kuaishou,
}


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Dataset:
    """Build the named dataset equivalent (see module docstring)."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)
