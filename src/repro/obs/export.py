"""Telemetry exposition: Prometheus-style text and JSONL snapshots.

Two formats, both deliberately boring:

* :func:`to_prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  (or its ``as_dict()``) in the Prometheus text exposition format —
  counters and gauges become single samples, histograms become
  summary-style ``{quantile=...}`` samples plus ``_count``/``_sum``
  series.  Metric names are sanitised (dots → underscores) and prefixed
  ``repro_``.  :func:`parse_prometheus_text` reads that text back into a
  flat ``{series_name: value}`` dict so the format is round-trippable in
  tests and scrapeable by anything that speaks Prometheus.
* :func:`write_jsonl_snapshot` appends one JSON object per call to a
  ``.jsonl`` file — metrics summary, span tree, and an optional label /
  extra payload — so replay drivers and benchmark harnesses accumulate
  comparable telemetry over time.  Snapshots carry no timestamps:
  identical runs write identical lines.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from repro.obs.metrics import Histogram, MetricsRegistry

_PREFIX = "repro_"


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sane = "".join(out)
    if not sane or not (sane[0].isalpha() or sane[0] == "_"):
        sane = "_" + sane
    return _PREFIX + sane


def _format_value(value: object) -> str:
    # repr() keeps floats round-trippable; ints stay ints.
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus_text(
    metrics: Union[MetricsRegistry, Dict[str, Dict[str, object]]],
) -> str:
    """Render a metrics registry (or its ``as_dict()``) as Prometheus text."""
    summary = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    lines = []
    for name in sorted(summary):
        info = summary[name]
        kind = info.get("type")
        sane = _sanitize(name)
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {sane} {kind}")
            lines.append(f"{sane} {_format_value(info['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {sane} summary")
            for p in Histogram.PERCENTILES:
                quantile = repr(p / 100.0)
                lines.append(
                    f'{sane}{{quantile="{quantile}"}} '
                    f"{_format_value(info[f'p{p:g}'])}"
                )
            lines.append(f"{sane}_count {_format_value(info['count'])}")
            # The registry summary reports mean rather than sum; recover
            # the exact sum (mean is sum/count by construction).
            total = float(info["mean"]) * int(info["count"])
            lines.append(f"{sane}_sum {_format_value(total)}")
        else:
            raise ValueError(f"unknown instrument type {kind!r} for {name!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series_name: value}``.

    Labelled samples keep their label block in the key
    (``repro_serve_latency{quantile="0.5"}``).  Comment and blank lines
    are skipped.
    """
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed exposition line: {line!r}")
        series[key] = float(value)
    return series


def write_jsonl_snapshot(
    path: str,
    metrics: Optional[Union[MetricsRegistry, Dict[str, Dict[str, object]]]] = None,
    trace: Optional[object] = None,
    label: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Append one JSON snapshot line to ``path`` and return the record.

    ``trace`` is any tracer (its ``as_dict()`` is embedded); ``extra``
    merges additional top-level fields (e.g. benchmark throughput
    numbers) into the record.
    """
    record: Dict[str, object] = {}
    if label is not None:
        record["label"] = label
    if metrics is not None:
        record["metrics"] = (
            metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
        )
    if trace is not None:
        record["trace"] = trace.as_dict() if hasattr(trace, "as_dict") else trace
    if extra:
        record.update(extra)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record
