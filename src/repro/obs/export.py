"""Telemetry exposition: Prometheus-style text and JSONL snapshots.

Two formats, both deliberately boring:

* :func:`to_prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  (or its ``as_dict()``) in the Prometheus text exposition format —
  counters and gauges become single samples, reservoir histograms become
  summary-style ``{quantile=...}`` samples plus ``_count``/``_sum``
  series, and HDR-backed histograms (``hdr_histogram`` instruments or
  reservoir histograms with an attached
  :class:`~repro.obs.hdr.HdrHistogram`) become real Prometheus
  *histogram* families: cumulative ``_bucket{le="..."}`` series ending
  in ``le="+Inf"``, plus ``_count``/``_sum``.  Metric names are
  sanitised (dots → underscores) and prefixed ``repro_``.
  :func:`parse_prometheus_text` reads that text back into a flat
  ``{series_name: value}`` dict so the format is round-trippable in
  tests and scrapeable by anything that speaks Prometheus.
* :func:`write_jsonl_snapshot` appends one JSON object per call to a
  ``.jsonl`` file — metrics summary, span tree, and an optional label /
  extra payload — so replay drivers and benchmark harnesses accumulate
  comparable telemetry over time.  Snapshots carry no timestamps:
  identical runs write identical lines.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

_PREFIX = "repro_"


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sane = "".join(out)
    if not sane or not (sane[0].isalpha() or sane[0] == "_"):
        sane = "_" + sane
    return _PREFIX + sane


def _format_value(value: object) -> str:
    # repr() keeps floats round-trippable; ints stay ints.
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_le(le: object) -> str:
    return le if isinstance(le, str) else repr(float(le))


def _histogram_family_lines(sane: str, info: Dict[str, object]) -> list:
    """Prometheus *histogram* exposition from an ``hdr_histogram``
    summary: cumulative ``_bucket{le=...}`` samples ending at ``+Inf``,
    then ``_count`` and ``_sum``."""
    lines = [f"# TYPE {sane} histogram"]
    for le, cumulative in info["buckets"]:
        lines.append(
            f'{sane}_bucket{{le="{_format_le(le)}"}} {_format_value(cumulative)}'
        )
    lines.append(f"{sane}_count {_format_value(info['count'])}")
    lines.append(f"{sane}_sum {_format_value(info['sum'])}")
    return lines


def to_prometheus_text(
    metrics: Union[MetricsRegistry, Dict[str, Dict[str, object]]],
) -> str:
    """Render a metrics registry (or its ``as_dict()``) as Prometheus text."""
    summary = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    lines = []
    for name in sorted(summary):
        info = summary[name]
        kind = info.get("type")
        sane = _sanitize(name)
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {sane} {kind}")
            lines.append(f"{sane} {_format_value(info['value'])}")
        elif kind == "hdr_histogram":
            lines.extend(_histogram_family_lines(sane, info))
        elif kind == "histogram":
            if "hdr" in info:
                # The attached HDR backend has exact bucket counts —
                # expose the real histogram family instead of the
                # reservoir summary (quantiles are derivable from the
                # cumulative buckets, histogram_quantile-style).
                lines.extend(_histogram_family_lines(sane, info["hdr"]))
                continue
            lines.append(f"# TYPE {sane} summary")
            for p in Histogram.PERCENTILES:
                quantile = repr(p / 100.0)
                lines.append(
                    f'{sane}{{quantile="{quantile}"}} '
                    f"{_format_value(info[f'p{p:g}'])}"
                )
            lines.append(f"{sane}_count {_format_value(info['count'])}")
            # The registry summary reports mean rather than sum; recover
            # the exact sum (mean is sum/count by construction).
            total = float(info["mean"]) * int(info["count"])
            lines.append(f"{sane}_sum {_format_value(total)}")
        else:
            raise ValueError(f"unknown instrument type {kind!r} for {name!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{series_name: value}``.

    Labelled samples keep their label block in the key
    (``repro_serve_latency{quantile="0.5"}``).  Comment and blank lines
    are skipped.
    """
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed exposition line: {line!r}")
        series[key] = float(value)
    return series


def write_jsonl_snapshot(
    path: str,
    metrics: Optional[Union[MetricsRegistry, Dict[str, Dict[str, object]]]] = None,
    trace: Optional[object] = None,
    label: Optional[str] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Append one JSON snapshot line to ``path`` and return the record.

    ``trace`` is any tracer (its ``as_dict()`` is embedded); ``extra``
    merges additional top-level fields (e.g. benchmark throughput
    numbers) into the record.
    """
    record: Dict[str, object] = {}
    if label is not None:
        record["label"] = label
    if metrics is not None:
        record["metrics"] = (
            metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
        )
    if trace is not None:
        record["trace"] = trace.as_dict() if hasattr(trace, "as_dict") else trace
    if extra:
        record.update(extra)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


class MetricsWatcher:
    """Poll selected counters/gauges and report per-interval deltas.

    Backs ``repro obs --watch``: each tick reads the named instruments
    (counter value, gauge value, or histogram count), computes the delta
    and per-second rate since the previous tick, and hands one formatted
    row to the ``emit`` callback.  The clock and sleep are injectable —
    defaults are :func:`time.monotonic` / :func:`time.sleep` (this
    module is in the ``obs/`` clock-exemption scope) — so tests drive
    ticks with a fake clock and no real sleeping.  The watcher itself is
    single-threaded and lock-free: it only *reads* instruments, each of
    which is internally locked.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        names: Iterable[str],
        interval_seconds: float = 1.0,
        clock_fn: Optional[Callable[[], float]] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
    ):
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self.registry = registry
        self.names = list(names)
        if not self.names:
            raise ValueError("watcher needs at least one metric name")
        self.interval_seconds = float(interval_seconds)
        self._clock = clock_fn if clock_fn is not None else time.monotonic
        self._sleep = sleep_fn if sleep_fn is not None else time.sleep
        self._last: Dict[str, float] = {}
        self._last_time: Optional[float] = None

    def _read(self, name: str) -> float:
        instrument = self.registry.get(name)
        if instrument is None:
            return 0.0
        if isinstance(instrument, (Counter, Gauge)):
            return float(instrument.as_dict()["value"])
        # Histogram-ish: the observation count is the watchable series.
        return float(instrument.as_dict()["count"])

    def poll(self) -> Dict[str, Dict[str, float]]:
        """One tick: ``{name: {value, delta, rate}}`` since the last poll."""
        now = float(self._clock())
        elapsed = (
            now - self._last_time if self._last_time is not None else 0.0
        )
        snapshot: Dict[str, Dict[str, float]] = {}
        for name in self.names:
            value = self._read(name)
            delta = value - self._last.get(name, 0.0) if self._last else 0.0
            rate = delta / elapsed if elapsed > 0 else 0.0
            snapshot[name] = {"value": value, "delta": delta, "rate": rate}
            self._last[name] = value
        self._last_time = now
        return snapshot

    @staticmethod
    def format_row(snapshot: Dict[str, Dict[str, float]]) -> str:
        """One aligned text row: ``name=value (+delta, rate/s)`` columns."""
        cells: List[str] = []
        for name in sorted(snapshot):
            cell = snapshot[name]
            cells.append(
                f"{name}={cell['value']:g} "
                f"(+{cell['delta']:g}, {cell['rate']:.1f}/s)"
            )
        return "  ".join(cells)

    def watch(
        self,
        emit: Callable[[str], None],
        until: Optional[Callable[[], bool]] = None,
        max_ticks: Optional[int] = None,
    ) -> int:
        """Poll-and-emit until ``until()`` is true (or ``max_ticks``).

        The first poll establishes the baseline without emitting; every
        subsequent tick sleeps ``interval_seconds`` then emits one
        formatted delta row.  Returns the number of rows emitted.
        """
        self.poll()
        ticks = 0
        while max_ticks is None or ticks < max_ticks:
            if until is not None and until():
                break
            self._sleep(self.interval_seconds)
            emit(self.format_row(self.poll()))
            ticks += 1
        return ticks
