"""Fixed log-bucketed (HDR-style) histograms: tail-accurate, bounded.

The reservoir :class:`~repro.obs.metrics.Histogram` keeps exact streaming
moments but samples percentiles from at most ``reservoir_size`` values —
beyond that bound, p99/p999 are estimates whose error grows with the
observation count.  :class:`HdrHistogram` is the complementary backend:
a fixed array of geometrically spaced buckets covering
``[min_value, max_value]`` with ``buckets_per_decade`` buckets per
decade.  Every observation lands in exactly one bucket (exact counts,
no sampling), so any quantile is correct to within one bucket's relative
width — ``10 ** (1 / buckets_per_decade) - 1`` (~8% at the default 30
buckets/decade) — no matter how many samples have been seen, at a fixed
memory cost of one ``int64`` per bucket.

This is the property SLO reporting needs: a p999 read from a reservoir
of 4096 samples is dominated by sampling noise, while a p999 read from
exact bucket counts is wrong by at most one bucket boundary.  The bucket
layout also maps directly onto Prometheus *histogram* exposition
(cumulative ``_bucket{le="..."}`` series, rendered by
:mod:`repro.obs.export`), and :meth:`count_above` gives SLO burn-rate
evaluation (:mod:`repro.obs.slo`) an exact good/bad split at any bucket
boundary.

Values below ``min_value`` clamp into the first bucket; values above
``max_value`` land in the overflow (``+Inf``) bucket.  The defaults span
1 microsecond to 1000 seconds, which covers every latency this system
records.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class HdrHistogram:
    """Exact-count log-bucketed histogram with bounded memory.

    Thread-safe: a single lock guards the bucket counts and the
    streaming moments (count/sum/min/max).  Reads snapshot under the
    lock and compute outside it.
    """

    #: percentiles reported by :meth:`as_dict`.
    PERCENTILES = (50.0, 95.0, 99.0, 99.9)

    def __init__(
        self,
        name: str,
        min_value: float = 1e-6,
        max_value: float = 1e3,
        buckets_per_decade: int = 30,
    ):
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if max_value <= min_value:
            raise ValueError(
                f"max_value must exceed min_value ({min_value} -> {max_value})"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.name = name
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(max_value / min_value)
        n_buckets = int(math.ceil(decades * buckets_per_decade)) + 1
        growth = 10.0 ** (1.0 / buckets_per_decade)
        # _boundaries[i] is the inclusive upper bound (Prometheus ``le``)
        # of bucket i; one extra overflow bucket catches values above the
        # last boundary.  Immutable after construction.
        self._boundaries = self.min_value * growth ** np.arange(
            n_buckets, dtype=np.float64
        )
        self._counts = np.zeros(n_buckets + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min_observed = 0.0
        self.max_observed = 0.0
        self._lock = threading.Lock()

    @property
    def bucket_count(self) -> int:
        """Number of finite buckets (the overflow bucket excluded)."""
        return int(self._boundaries.size)

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantile error: one bucket's width."""
        return 10.0 ** (1.0 / self.buckets_per_decade) - 1.0

    @property
    def boundaries(self) -> np.ndarray:
        """Copy of the inclusive bucket upper bounds (``le`` values)."""
        return self._boundaries.copy()

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` lands in (last = overflow)."""
        idx = int(np.searchsorted(self._boundaries, float(value), side="left"))
        return idx  # == boundaries.size for overflow

    def observe(self, value: float) -> None:
        value = float(value)
        idx = self.bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.sum += value
            if self.count == 1 or value < self.min_observed:
                self.min_observed = value
            if self.count == 1 or value > self.max_observed:
                self.max_observed = value

    def _snapshot(self) -> Tuple[np.ndarray, int, float, float, float]:
        with self._lock:
            return (
                self._counts.copy(),
                self.count,
                self.sum,
                self.min_observed,
                self.max_observed,
            )

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile as a bucket upper bound (0.0 if empty).

        The returned boundary is >= the exact quantile and within one
        bucket of it (:attr:`relative_error` relative width); overflow
        observations report the exact observed maximum.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        counts, count, _, _, max_observed = self._snapshot()
        if count == 0:
            return 0.0
        rank = max(1, int(math.ceil(p / 100.0 * count)))
        cumulative = np.cumsum(counts)
        idx = int(np.searchsorted(cumulative, rank, side="left"))
        if idx >= self._boundaries.size:
            return float(max_observed)
        return float(self._boundaries[idx])

    def count_above(self, threshold: float) -> int:
        """Exact number of observations above ``threshold``'s bucket.

        Counts observations in buckets strictly above the bucket that
        contains ``threshold`` — exact when ``threshold`` is a bucket
        boundary, otherwise a lower bound that undercounts by at most
        the contents of one bucket.  This is the "bad events" side of a
        latency SLO (:mod:`repro.obs.slo`).
        """
        idx = self.bucket_index(threshold)
        counts, _, _, _, _ = self._snapshot()
        return int(counts[idx + 1 :].sum())

    def good_bad(self, threshold: float) -> Tuple[int, int]:
        """``(good, bad)`` split at ``threshold`` from one snapshot.

        ``bad`` follows :meth:`count_above` semantics; ``good`` is the
        remainder, so ``good + bad == count`` is exact even while other
        threads are observing.
        """
        idx = self.bucket_index(threshold)
        counts, count, _, _, _ = self._snapshot()
        bad = int(counts[idx + 1 :].sum())
        return count - bad, bad

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs for Prometheus exposition.

        Leading all-zero buckets are trimmed and trailing buckets are cut
        once the cumulative count reaches the total; the ``+Inf`` bucket
        is always emitted last so ``_bucket{le="+Inf"} == _count`` holds.
        """
        counts, count, _, _, _ = self._snapshot()
        cumulative = np.cumsum(counts[:-1])
        pairs: List[Tuple[float, int]] = []
        finite_total = int(cumulative[-1]) if cumulative.size else 0
        if finite_total > 0:
            first = int(np.argmax(cumulative > 0))
            for i in range(first, cumulative.size):
                pairs.append((float(self._boundaries[i]), int(cumulative[i])))
                if cumulative[i] >= finite_total:
                    break
        pairs.append((math.inf, int(count)))
        return pairs

    def as_dict(self) -> Dict[str, object]:
        counts, count, total, min_observed, max_observed = self._snapshot()
        summary: Dict[str, object] = {
            "type": "hdr_histogram",
            "count": int(count),
            "sum": float(total),
            "mean": float(total / count) if count else 0.0,
            "min": float(min_observed) if count else 0.0,
            "max": float(max_observed) if count else 0.0,
            "relative_error": self.relative_error,
        }
        cumulative = np.cumsum(counts)
        for p in self.PERCENTILES:
            if count == 0:
                summary[f"p{p:g}"] = 0.0
                continue
            rank = max(1, int(math.ceil(p / 100.0 * count)))
            idx = int(np.searchsorted(cumulative, rank, side="left"))
            if idx >= self._boundaries.size:
                summary[f"p{p:g}"] = float(max_observed)
            else:
                summary[f"p{p:g}"] = float(self._boundaries[idx])
        summary["buckets"] = [
            [le if math.isfinite(le) else "+Inf", c]
            for le, c in self.cumulative_buckets()
        ]
        return summary


def exact_percentile(values: Sequence[float], p: float) -> float:
    """Rank-based exact quantile matching :meth:`HdrHistogram.percentile`.

    Uses the same ceil-rank definition (the smallest value with at least
    ``ceil(p/100 * n)`` observations at or below it) so tests can compare
    the HDR estimate against ground truth bucket-for-bucket.
    """
    data = np.sort(np.asarray(values, dtype=np.float64))
    if data.size == 0:
        return 0.0
    rank = max(1, int(math.ceil(p / 100.0 * data.size)))
    return float(data[rank - 1])
