"""Online quality telemetry: streaming hold-out, cohorts, drift.

Offline evaluation (:mod:`repro.eval`) answers "how good was the model
on a frozen split"; a serving system also needs the *online* version of
that question — is ranking quality holding up right now, and for whom?
This module provides it without any labelled data, using the stream
itself as ground truth:

* **Streaming hold-out** — just before the service learns an
  interaction ``(u, v)``, :meth:`StreamingQualityEvaluator.observe_event`
  asks the live service for ``u``'s top-K and scores it against ``v``
  (the interaction the user is *about to* make).  This is the standard
  prequential ("test-then-train") protocol: every event is an unbiased
  test point because the model has not seen it yet.  Hits and
  reciprocal ranks feed cumulative and rolling-window gauges
  (``quality.hit_rate``, ``quality.mrr``, ``quality.window_hit_rate``,
  ``quality.window_mrr``), so drift in quality is visible at the
  interval the window spans.  Misses record a rank of ``inf``, which
  makes the cumulative gauges mathematically identical to the offline
  :func:`repro.eval.metrics.hit_rate` / :func:`~repro.eval.metrics.mrr`
  over the same per-event ranks — the parity the tests pin.
* **Cohorts by node age** — each evaluation is bucketed by how many
  interactions the *target item* had before the event (``cold`` = never
  seen, then ``warming``, then ``established``), giving the cold-start
  story a measured quality-by-age curve instead of an assumed one.
* **Embedding drift** — on every snapshot publish,
  :meth:`~StreamingQualityEvaluator.observe_publish` diffs the rows the
  update touched (``model.last_touched_nodes``) against a baseline copy
  of the served matrix and records the per-row L2 drift norms
  (``quality.drift_row_norm`` histogram, last-publish mean/max gauges).
  Work per publish is O(touched rows), not O(nodes).

The evaluator holds no reference to serve-layer types (it duck-types
the service: ``recommend``, ``ingest`` metrics registry,
``snapshot_version``, ``store.snapshot()``, ``model.last_touched_nodes``),
keeping ``repro.obs`` import-free of ``repro.serve``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only; obs must not import serve
    from repro.graph.streams import StreamEdge
    from repro.serve.service import RecommendationService

#: default cohort boundaries: minimum prior interaction count → label.
DEFAULT_COHORTS = ((0, "cold"), (1, "warming"), (8, "established"))


@dataclass(frozen=True)
class QualityRecord:
    """One prequential evaluation: the served top-K scored against the
    interaction the user actually made next."""

    index: int
    user: int
    item: int
    rank: float  # 1-based position of the item in the served top-K; inf = miss
    k: int
    cohort: str
    item_age: int  # the item's interaction count before this event

    @property
    def hit(self) -> bool:
        return self.rank <= self.k

    @property
    def reciprocal_rank(self) -> float:
        return 1.0 / self.rank if math.isfinite(self.rank) else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "user": self.user,
            "item": self.item,
            "rank": self.rank if math.isfinite(self.rank) else "miss",
            "k": self.k,
            "cohort": self.cohort,
            "item_age": self.item_age,
            "hit": self.hit,
        }


class StreamingQualityEvaluator:
    """Prequential quality + drift telemetry for a live service.

    Thread-safe: one lock guards the counters, windows, cohort stats,
    retained records and the drift baseline.  Service calls (the top-K
    query, snapshot reads) always happen outside the lock — the service
    is an injected collaborator (hold-and-call discipline) and itself
    takes snapshot/index locks.
    """

    def __init__(
        self,
        service: "RecommendationService",
        k: int = 10,
        window: int = 512,
        cohorts: Sequence[Tuple[int, str]] = DEFAULT_COHORTS,
        max_records: int = 100_000,
        track_drift: bool = True,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not cohorts or cohorts[0][0] != 0:
            raise ValueError(
                f"cohorts must start at age 0, got {cohorts!r}"
            )
        if list(c[0] for c in cohorts) != sorted(set(c[0] for c in cohorts)):
            raise ValueError(
                f"cohort boundaries must be strictly increasing, got {cohorts!r}"
            )
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.service = service
        self.k = int(k)
        self.window = int(window)
        self.cohorts = tuple((int(age), str(label)) for age, label in cohorts)
        self.max_records = int(max_records)
        self.track_drift = bool(track_drift)
        self._lock = threading.Lock()
        self._seen: Dict[int, int] = {}
        self._window_hits: Deque[float] = deque()
        self._window_rr: Deque[float] = deque()
        self._evaluated = 0
        self._hits = 0
        self._rr_sum = 0.0
        self._records: List[QualityRecord] = []
        self._cohort_evaluated: Dict[str, int] = {
            label: 0 for _, label in self.cohorts
        }
        self._cohort_hits: Dict[str, int] = {label: 0 for _, label in self.cohorts}
        self._baseline: Optional[np.ndarray] = None
        self._last_version = int(service.snapshot_version)
        if self.track_drift:
            self._baseline = np.array(
                service.store.snapshot().matrix(), dtype=np.float64, copy=True
            )
        registry = service.metrics
        for name in ("quality.evaluated", "quality.hits", "quality.publishes"):
            registry.counter(name)
        for name in (
            "quality.hit_rate",
            "quality.mrr",
            "quality.window_hit_rate",
            "quality.window_mrr",
            "quality.drift.last_mean",
            "quality.drift.last_max",
        ):
            registry.gauge(name)
        registry.histogram("quality.drift_row_norm")
        for _, label in self.cohorts:
            registry.counter(f"quality.cohort.{label}.evaluated")
            registry.counter(f"quality.cohort.{label}.hits")
            registry.gauge(f"quality.cohort.{label}.hit_rate")

    def _cohort_of(self, age: int) -> str:
        label = self.cohorts[0][1]
        for bound, name in self.cohorts:
            if age >= bound:
                label = name
        return label

    # ------------------------------------------------------- prequential scoring

    def observe_event(self, edge: "StreamEdge") -> QualityRecord:
        """Score the served top-K against ``edge`` *before* ingesting it.

        Call order matters: the event must not yet have been offered to
        the service, otherwise the model may already have learned the
        very interaction it is being tested on.
        """
        u, v = int(edge.u), int(edge.v)
        items = self.service.recommend(u, self.k)  # outside the lock
        position = np.flatnonzero(np.asarray(items) == v)
        rank = float(position[0] + 1) if position.size else math.inf
        hit = rank <= self.k
        rr = 1.0 / rank if math.isfinite(rank) else 0.0
        with self._lock:
            age = self._seen.get(v, 0)
            cohort = self._cohort_of(age)
            index = self._evaluated
            self._evaluated += 1
            self._hits += int(hit)
            self._rr_sum += rr
            self._window_hits.append(float(hit))
            self._window_rr.append(rr)
            while len(self._window_hits) > self.window:
                self._window_hits.popleft()
                self._window_rr.popleft()
            self._cohort_evaluated[cohort] += 1
            self._cohort_hits[cohort] += int(hit)
            record = QualityRecord(
                index=index,
                user=u,
                item=v,
                rank=rank,
                k=self.k,
                cohort=cohort,
                item_age=age,
            )
            if len(self._records) < self.max_records:
                self._records.append(record)
            # Both endpoints aged: the interaction is now history.
            self._seen[u] = self._seen.get(u, 0) + 1
            self._seen[v] = age + 1
            evaluated = self._evaluated
            hits = self._hits
            rr_sum = self._rr_sum
            window_hits = sum(self._window_hits)
            window_rr = sum(self._window_rr)
            window_n = len(self._window_hits)
            cohort_counts = {
                label: (self._cohort_evaluated[label], self._cohort_hits[label])
                for _, label in self.cohorts
            }
        registry = self.service.metrics
        registry.counter("quality.evaluated").set(evaluated)
        registry.counter("quality.hits").set(hits)
        registry.gauge("quality.hit_rate").set(hits / evaluated)
        registry.gauge("quality.mrr").set(rr_sum / evaluated)
        registry.gauge("quality.window_hit_rate").set(window_hits / window_n)
        registry.gauge("quality.window_mrr").set(window_rr / window_n)
        for label, (n, h) in cohort_counts.items():
            registry.counter(f"quality.cohort.{label}.evaluated").set(n)
            registry.counter(f"quality.cohort.{label}.hits").set(h)
            if n:
                registry.gauge(f"quality.cohort.{label}.hit_rate").set(h / n)
        return record

    # ------------------------------------------------------------ drift tracking

    def observe_publish(self) -> Optional[Dict[str, float]]:
        """Record drift norms if a new snapshot was published.

        Returns ``{"rows", "mean", "max"}`` for the publish (or ``None``
        when the version is unchanged or drift tracking is off).
        """
        if not self.track_drift:
            return None
        version = int(self.service.snapshot_version)
        with self._lock:
            changed = version != self._last_version
            self._last_version = version
        if not changed:
            return None
        rows = np.asarray(self.service.model.last_touched_nodes, dtype=np.int64)
        if rows.size == 0:
            return None
        fresh = np.asarray(
            self.service.store.snapshot().rows(rows), dtype=np.float64
        )
        with self._lock:
            previous = self._baseline[rows].copy()
            self._baseline[rows] = fresh
        norms = np.linalg.norm(fresh - previous, axis=1)
        registry = self.service.metrics
        histogram = registry.histogram("quality.drift_row_norm")
        for norm in norms:
            histogram.observe(float(norm))
        registry.counter("quality.publishes").inc()
        summary = {
            "rows": float(rows.size),
            "mean": float(norms.mean()),
            "max": float(norms.max()),
        }
        registry.gauge("quality.drift.last_mean").set(summary["mean"])
        registry.gauge("quality.drift.last_max").set(summary["max"])
        return summary

    # ------------------------------------------------------------------ summary

    @property
    def records(self) -> List[QualityRecord]:
        """The retained per-event evaluations (a copy)."""
        with self._lock:
            return list(self._records)

    def ranks(self) -> List[float]:
        """Per-event 1-based ranks (``inf`` = miss), offline-metric ready:
        feeding these to :func:`repro.eval.metrics.hit_rate` /
        :func:`~repro.eval.metrics.mrr` reproduces the cumulative gauges
        exactly."""
        with self._lock:
            return [r.rank for r in self._records]

    def summary(self) -> Dict[str, object]:
        with self._lock:
            evaluated = self._evaluated
            hits = self._hits
            rr_sum = self._rr_sum
            cohort = {
                label: {
                    "evaluated": self._cohort_evaluated[label],
                    "hits": self._cohort_hits[label],
                    "hit_rate": (
                        self._cohort_hits[label] / self._cohort_evaluated[label]
                        if self._cohort_evaluated[label]
                        else 0.0
                    ),
                }
                for _, label in self.cohorts
            }
        return {
            "evaluated": evaluated,
            "hits": hits,
            "hit_rate": hits / evaluated if evaluated else 0.0,
            "mrr": rr_sum / evaluated if evaluated else 0.0,
            "k": self.k,
            "cohorts": cohort,
        }
