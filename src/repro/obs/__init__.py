"""repro.obs — the observability spine: metrics, tracing, exporters.

One dependency-free subsystem shared by every layer:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  (histograms are bounded: fixed-size reservoir + exact streaming
  moments, so replay-scale sample counts cannot leak memory);
* :mod:`repro.obs.trace` — nested span tracing
  (``with tracer.span("core.engine.execute", edges=n): ...``) with an
  aggregated parent/child span tree, JSON export and a self-time flame
  table; the default :data:`NULL_TRACER` is a no-op so instrumented hot
  paths cost nothing until tracing is switched on;
* :mod:`repro.obs.export` — Prometheus-style text exposition (including
  cumulative ``_bucket{le=...}`` families for HDR-backed histograms), a
  JSONL snapshot writer, and the poll-and-print
  :class:`~repro.obs.export.MetricsWatcher` behind ``repro obs --watch``;
* :mod:`repro.obs.hdr` — fixed log-bucketed
  :class:`~repro.obs.hdr.HdrHistogram`: exact per-bucket counts in
  bounded memory, so p99/p999 stay accurate at any observation count;
* :mod:`repro.obs.loadgen` — the open-loop load harness: seeded
  Poisson/bursty/ramp arrival processes driving the service at a fixed
  offered rate with queue-wait vs service-time attribution;
* :mod:`repro.obs.slo` — declarative SLOs evaluated as multi-window
  burn rates with alert records;
* :mod:`repro.obs.quality` — online quality telemetry: prequential
  hold-out hit-rate/MRR, node-age cohorts, embedding-drift norms.

Span names follow the ``layer.component.phase`` convention documented
in DESIGN.md §10 (e.g. ``core.inslearn.replay``, ``core.engine.compile``,
``serve.service.query``).
"""

from repro.obs.export import (
    MetricsWatcher,
    parse_prometheus_text,
    to_prometheus_text,
    write_jsonl_snapshot,
)
from repro.obs.hdr import HdrHistogram, exact_percentile
from repro.obs.loadgen import (
    ArrivalProcess,
    LoadReport,
    OpenLoopLoadGenerator,
    RequestEnvelope,
    hdr_bucket_error,
    measure_capacity,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.quality import QualityRecord, StreamingQualityEvaluator
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    SLO,
    AlertRecord,
    BurnWindow,
    SLOMonitor,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanNode,
    Tracer,
    format_flame_table,
    format_span_tree,
    make_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HdrHistogram",
    "exact_percentile",
    "MetricsRegistry",
    "MetricsWatcher",
    "ArrivalProcess",
    "LoadReport",
    "OpenLoopLoadGenerator",
    "RequestEnvelope",
    "hdr_bucket_error",
    "measure_capacity",
    "QualityRecord",
    "StreamingQualityEvaluator",
    "SLO",
    "SLOMonitor",
    "AlertRecord",
    "BurnWindow",
    "DEFAULT_WINDOWS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanNode",
    "make_tracer",
    "format_span_tree",
    "format_flame_table",
    "to_prometheus_text",
    "parse_prometheus_text",
    "write_jsonl_snapshot",
]
