"""repro.obs — the observability spine: metrics, tracing, exporters.

One dependency-free subsystem shared by every layer:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  (histograms are bounded: fixed-size reservoir + exact streaming
  moments, so replay-scale sample counts cannot leak memory);
* :mod:`repro.obs.trace` — nested span tracing
  (``with tracer.span("core.engine.execute", edges=n): ...``) with an
  aggregated parent/child span tree, JSON export and a self-time flame
  table; the default :data:`NULL_TRACER` is a no-op so instrumented hot
  paths cost nothing until tracing is switched on;
* :mod:`repro.obs.export` — Prometheus-style text exposition and a
  JSONL snapshot writer so replay drivers and benchmark harnesses
  persist comparable telemetry next to their tables.

Span names follow the ``layer.component.phase`` convention documented
in DESIGN.md §10 (e.g. ``core.inslearn.replay``, ``core.engine.compile``,
``serve.service.query``).
"""

from repro.obs.export import (
    parse_prometheus_text,
    to_prometheus_text,
    write_jsonl_snapshot,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanNode,
    Tracer,
    format_flame_table,
    format_span_tree,
    make_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanNode",
    "make_tracer",
    "format_span_tree",
    "format_flame_table",
    "to_prometheus_text",
    "parse_prometheus_text",
    "write_jsonl_snapshot",
]
