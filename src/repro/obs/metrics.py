"""The shared, thread-safe metrics registry.

Grown out of the serving layer's process-local registry
(:mod:`repro.serve.metrics` is now a thin re-export of this module) so
the trainer, the execution engines, sampling and the serving stack all
report into one instrument namespace.  Three instrument kinds cover
everything the system reports:

* :class:`Counter` — monotonically increasing event counts
  (events ingested, cache hits, plan hops compiled, ...),
* :class:`Gauge` — point-in-time values with ``set``/``inc``/``dec``
  (queue depth, staleness, cache hit rate),
* :class:`Histogram` — latency/size distributions summarised as
  count/mean/p50/p95/p99/max.  **Bounded**: exact streaming moments
  (count, sum, sum of squares, max) plus a fixed-size reservoir for
  percentiles.  Below the reservoir capacity every sample is retained
  and percentiles are exact; beyond it, uniform reservoir sampling
  (Algorithm R) keeps memory constant under replay-scale load.  The
  reservoir RNG is a :mod:`repro.utils.rng` generator seeded
  deterministically from the instrument name, so summaries stay
  reproducible run to run.  For tail-accurate quantiles a
  :class:`~repro.obs.hdr.HdrHistogram` backend can be attached
  (``registry.histogram(name, hdr=True)``): observations are mirrored
  into exact log-spaced bucket counts and ``percentile(p >= 99)`` is
  answered from them instead of the reservoir.

Every mutating operation is lock-guarded — registry get-or-create and
instrument observe/inc/set — so an ingestion worker thread and sharded
serving loops can share one registry without lost updates.  The
registry renders to plain dictionaries / JSON so replay drivers and
benchmarks persist snapshots next to their tables; Prometheus text and
JSONL exposition live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import json
import threading
import zlib
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.obs.hdr import HdrHistogram
from repro.utils.rng import new_rng
from repro.utils.timer import Timer


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        """Synchronise the counter with an externally tracked total.

        The serving layer mirrors queue-owned cumulative counts into the
        registry this way; ``value`` may never move backwards.
        """
        with self._lock:
            if value < self.value:
                raise ValueError(
                    f"counter {self.name!r} cannot move backwards "
                    f"({self.value} -> {value})"
                )
            self.value = value

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move in either direction."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount`` (queue-depth style tracking)."""
        with self._lock:
            self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        with self._lock:
            self.value -= float(amount)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {"type": "gauge", "value": self.value}


class _HistogramTimer(Timer):
    """A :class:`Timer` whose laps feed a histogram on exit."""

    def __init__(self, histogram: "Histogram"):
        super().__init__()
        self._histogram = histogram

    def __exit__(self, *exc_info) -> None:
        super().__exit__(*exc_info)
        self._histogram.observe(self.laps[-1])


class Histogram:
    """Bounded sample accumulator summarised as count/mean/p50/p95/p99/max.

    ``observe`` records raw values (the service records seconds);
    :meth:`time` returns a context manager that records one wall-clock
    lap per ``with`` block.  Count, mean and max are exact streaming
    moments; percentiles come from a reservoir of at most
    ``reservoir_size`` samples (exact until the reservoir fills).
    """

    PERCENTILES = (50.0, 95.0, 99.0)
    #: default reservoir capacity; large enough that every workload in
    #: the test/benchmark suites stays in the exact-percentile regime.
    DEFAULT_RESERVOIR_SIZE = 4096
    #: quantiles at or above this are routed to the attached HDR
    #: backend (when one exists), where they are bucket-exact.
    HDR_ROUTE_PERCENTILE = 99.0

    def __init__(
        self,
        name: str,
        reservoir_size: Optional[int] = None,
        hdr: Union[None, bool, HdrHistogram] = None,
    ):
        if reservoir_size is not None and reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.name = name
        self.reservoir_size = (
            self.DEFAULT_RESERVOIR_SIZE if reservoir_size is None else reservoir_size
        )
        # Optional tail-accurate backend: every observation is mirrored
        # into the HDR histogram, and high quantiles are answered from
        # its exact bucket counts instead of the reservoir.  ``True``
        # builds one with the default latency range.  Set only here so
        # the attribute is immutable after construction (no lock needed
        # to read it; HdrHistogram carries its own lock).
        if hdr is True:
            hdr = HdrHistogram(name)
        self.hdr: Optional[HdrHistogram] = hdr if hdr else None
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.max_value = 0.0
        self._samples: List[float] = []
        self._lock = threading.Lock()
        # Deterministic per-name reservoir stream (utils/rng discipline:
        # an explicit seeded Generator, never global numpy state).
        self._rng = new_rng(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        if self.hdr is not None:
            self.hdr.observe(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.sum_sq += value * value
            if self.count == 1 or value > self.max_value:
                self.max_value = value
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
            else:
                # Algorithm R: keep each of the ``count`` samples seen so
                # far with probability reservoir_size / count.
                slot = int(self._rng.integers(self.count))
                if slot < self.reservoir_size:
                    self._samples[slot] = value

    def time(self) -> Timer:
        """Context manager: ``with h.time(): ...`` observes the lap."""
        return _HistogramTimer(self)

    @property
    def samples(self) -> List[float]:
        """The retained reservoir samples (a copy; at most
        ``reservoir_size`` of the ``count`` observed values)."""
        with self._lock:
            return list(self._samples)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0.0 if empty).

        Accuracy bound: percentiles come from a uniform reservoir of at
        most ``reservoir_size`` samples.  They are **exact** while
        ``count <= reservoir_size``; beyond that the reported quantile
        is an estimate whose rank error scales like
        ``sqrt(p/100 * (1 - p/100) / reservoir_size)`` — about ±0.16
        rank-percentile points at p50 with the default 4096-sample
        reservoir, but relatively much worse in the tail: at p99.9 only
        ~4 reservoir samples sit above the quantile, so the estimate is
        dominated by sampling noise.  When an HDR backend is attached
        (``hdr=`` at construction), quantiles at or above
        :data:`HDR_ROUTE_PERCENTILE` are answered from its exact bucket
        counts instead — correct to within one bucket
        (:attr:`~repro.obs.hdr.HdrHistogram.relative_error`) at any
        observation count.
        """
        if self.hdr is not None and p >= self.HDR_ROUTE_PERCENTILE:
            return self.hdr.percentile(p)
        with self._lock:
            if not self._samples:
                return 0.0
            data = np.asarray(self._samples, dtype=np.float64)
        return float(np.percentile(data, p))

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            count = self.count
            mean = self.sum / count if count else 0.0
            max_value = self.max_value if count else 0.0
            data = np.asarray(self._samples, dtype=np.float64)
        summary: Dict[str, object] = {
            "type": "histogram",
            "count": int(count),
            "mean": float(mean),
            "max": float(max_value),
        }
        for p in self.PERCENTILES:
            summary[f"p{p:g}"] = float(np.percentile(data, p)) if data.size else 0.0
        if self.hdr is not None:
            summary["hdr"] = self.hdr.as_dict()
        return summary


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments.

    Names are unique across kinds: asking for a counter named like an
    existing gauge is a programming error and raises a :class:`TypeError`
    naming both the registered and the requested kind.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric name collision: {name!r} is already registered "
                    f"as a {type(instrument).__name__} and cannot also be a "
                    f"{kind.__name__}; pick a distinct name per instrument "
                    "kind"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self,
        name: str,
        reservoir_size: Optional[int] = None,
        hdr: Union[None, bool, HdrHistogram] = None,
    ) -> Histogram:
        """Get or create a histogram; ``reservoir_size`` and ``hdr``
        only apply on creation (an existing instrument keeps its bound
        and backend)."""
        return self._get(name, Histogram, reservoir_size=reservoir_size, hdr=hdr)

    def hdr_histogram(
        self,
        name: str,
        min_value: float = 1e-6,
        max_value: float = 1e3,
        buckets_per_decade: int = 30,
    ) -> HdrHistogram:
        """Get or create a standalone log-bucketed HDR histogram
        (bucket layout only applies on creation)."""
        return self._get(
            name,
            HdrHistogram,
            min_value=min_value,
            max_value=max_value,
            buckets_per_decade=buckets_per_decade,
        )

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, if any."""
        with self._lock:
            return self._instruments.get(name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._instruments))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Every instrument's summary, keyed by name (sorted)."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].as_dict() for name in sorted(instruments)}

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialise the registry; optionally also write it to ``path``."""
        payload = json.dumps(self.as_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
        return payload
