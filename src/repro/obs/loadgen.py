"""Open-loop load generation with queueing-delay attribution.

The serving benchmarks are *closed-loop*: each request waits for the
previous one to finish, so the measured rate is the service's capacity
and queueing delay is structurally invisible.  Real traffic is
*open-loop* — users do not coordinate with the server — and under an
open-loop arrival process latency explodes near saturation in a way a
closed-loop harness cannot show.  This module is the open-loop harness:

* :class:`ArrivalProcess` — seeded arrival schedules (``poisson``,
  ``bursty`` flash crowds, ``ramp``) built on :mod:`repro.utils.rng`:
  the same seed always yields the identical schedule, so load tests are
  replayable.
* :class:`OpenLoopLoadGenerator` — admits one :class:`RequestEnvelope`
  per scheduled arrival *regardless of completion* and hands it to a
  worker thread that drives the
  :class:`~repro.serve.RecommendationService` (optional top-K query,
  then ingest).  Every envelope carries admission → dispatch →
  completion timestamps, so **queue wait** (admission to dispatch: time
  spent waiting behind earlier work) is attributed separately from
  **service time** (dispatch to completion); inside the service the
  ``clock_fn`` stamps extend the chain with per-event batch-buffer wait
  and the train/publish split (``latency.queue_wait_seconds``,
  ``stage.train_seconds``, ``stage.publish_seconds``).
* :class:`LoadReport` — per-tier summary: exact p50/p99/p999 for
  end-to-end, queue-wait and service time (from retained samples),
  the HDR-histogram view of the same (tail-accurate at any scale), and
  the bucket error between them.

The clock and sleep are injectable (defaults
:func:`time.perf_counter` / :func:`time.sleep`; this module is in the
``obs/`` clock-exemption scope).  A test-supplied fake sleep must
advance its fake clock, otherwise the admission loop cannot make
progress.  Thread-safety: the admission thread and the worker share
only the pending deque (guarded by a condition variable) and the
envelope fields, whose cross-thread visibility is sequenced by the
deque handoff and the final ``join()``.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
)

import numpy as np

from repro.obs.hdr import HdrHistogram, exact_percentile
from repro.utils.rng import derive_seed, new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only; obs must not import serve
    from repro.graph.streams import StreamEdge
    from repro.serve.service import RecommendationService

ARRIVAL_KINDS = ("poisson", "bursty", "ramp")

#: report percentiles: the tails the SLO story is about.
REPORT_PERCENTILES = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class ArrivalProcess:
    """A seeded open-loop arrival schedule at a fixed offered rate.

    ``offsets(n)`` returns ``n`` non-decreasing arrival times (seconds
    from the start of the run).  It is a pure function of the process
    parameters — a fresh :mod:`repro.utils.rng` generator is derived
    from ``(seed, kind)`` on every call — so the same process always
    produces the identical schedule.

    Kinds:

    * ``poisson`` — memoryless arrivals at ``rate``/s (exponential
      inter-arrival gaps), the standard open-loop traffic model.
    * ``bursty`` — flash crowds: ``num_bursts`` evenly spaced windows
      covering ``burst_fraction`` of the requests arrive at
      ``rate * burst_multiplier``; the rest at ``rate``.
    * ``ramp`` — the instantaneous rate climbs linearly from ``rate``
      to ``rate * ramp_factor`` across the run, sweeping through
      saturation in a single schedule.
    """

    kind: str = "poisson"
    rate: float = 100.0
    seed: int = 0
    burst_multiplier: float = 8.0
    burst_fraction: float = 0.25
    num_bursts: int = 3
    ramp_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; pick one of {ARRIVAL_KINDS}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst_multiplier < 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError(
                f"burst_fraction must be in (0, 1), got {self.burst_fraction}"
            )
        if self.num_bursts < 1:
            raise ValueError(f"num_bursts must be >= 1, got {self.num_bursts}")
        if self.ramp_factor < 1.0:
            raise ValueError(
                f"ramp_factor must be >= 1, got {self.ramp_factor}"
            )

    def _rates(self, n: int) -> np.ndarray:
        """Instantaneous arrival rate ahead of each of the ``n`` requests."""
        rates = np.full(n, self.rate, dtype=np.float64)
        if self.kind == "bursty":
            per_burst = max(1, int(round(n * self.burst_fraction / self.num_bursts)))
            segment = n / self.num_bursts
            for b in range(self.num_bursts):
                start = int(round(b * segment))
                rates[start : start + per_burst] = self.rate * self.burst_multiplier
        elif self.kind == "ramp":
            rates = np.linspace(
                self.rate, self.rate * self.ramp_factor, num=n, dtype=np.float64
            )
        return rates

    def offsets(self, n: int) -> np.ndarray:
        """``n`` seeded arrival times in seconds (non-decreasing)."""
        if n < 1:
            raise ValueError(f"need at least one arrival, got n={n}")
        rng = new_rng(
            derive_seed(
                self.seed,
                zlib.crc32(b"loadgen"),
                zlib.crc32(self.kind.encode("utf-8")),
            )
        )
        gaps = rng.exponential(1.0, size=n) / self._rates(n)
        return np.cumsum(gaps)


@dataclass
class RequestEnvelope:
    """One offered event with its open-loop stage timestamps."""

    edge: "StreamEdge"
    index: int
    admitted_at: float
    dispatched_at: float = float("nan")
    completed_at: float = float("nan")
    #: the ``ingest()`` call alone (excludes the optional query) — the
    #: producer-visible cost the async-dispatch contract keeps flat
    ingest_seconds: float = float("nan")
    queried: bool = False
    accepted: bool = False
    error: Optional[str] = None

    @property
    def queue_wait_seconds(self) -> float:
        """Admission → dispatch: time spent queued behind earlier work."""
        return self.dispatched_at - self.admitted_at

    @property
    def service_seconds(self) -> float:
        """Dispatch → completion: the service's own processing time."""
        return self.completed_at - self.dispatched_at

    @property
    def latency_seconds(self) -> float:
        """Admission → completion: what the user of an open system sees."""
        return self.completed_at - self.admitted_at


def _stats(values: np.ndarray) -> Dict[str, float]:
    if values.size == 0:
        return {f"p{p:g}": 0.0 for p in REPORT_PERCENTILES} | {
            "mean": 0.0,
            "max": 0.0,
        }
    out = {
        f"p{p:g}": exact_percentile(values, p) for p in REPORT_PERCENTILES
    }
    out["mean"] = float(values.mean())
    out["max"] = float(values.max())
    return out


@dataclass
class LoadReport:
    """Summary of one open-loop run at a fixed offered rate."""

    process: ArrivalProcess
    requests: int
    accepted: int
    queried: int
    errors: int
    duration_seconds: float
    offered_rate: float
    achieved_rate: float
    e2e: Dict[str, float]
    queue_wait: Dict[str, float]
    service: Dict[str, float]
    #: the ``ingest()`` call alone — what a producer pays per event
    ingest_latency: Dict[str, float]
    #: exact per-request end-to-end latencies (the replayed fixture the
    #: HDR bucket-accuracy gate checks against).
    e2e_samples: np.ndarray = field(repr=False)
    queue_wait_samples: np.ndarray = field(repr=False)
    service_samples: np.ndarray = field(repr=False)
    ingest_samples: np.ndarray = field(repr=False)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (samples summarised, not embedded)."""
        return {
            "kind": self.process.kind,
            "seed": self.process.seed,
            "requests": self.requests,
            "accepted": self.accepted,
            "queried": self.queried,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "e2e": dict(self.e2e),
            "queue_wait": dict(self.queue_wait),
            "service": dict(self.service),
            "ingest_latency": dict(self.ingest_latency),
        }


class OpenLoopLoadGenerator:
    """Drive a service at a fixed offered rate on a worker thread.

    The admission loop (the calling thread) stamps one envelope per
    scheduled arrival and appends it to the pending deque — it never
    waits for the service.  The single worker thread pops envelopes,
    stamps dispatch, optionally issues a top-K query (every
    ``query_every``-th request, or every request routed through a
    ``quality`` evaluator), ingests the event, and stamps completion.
    Latency histograms land in the service's own metrics registry as
    HDR-backed instruments (``loadgen.e2e_seconds``,
    ``loadgen.queue_wait_seconds``, ``loadgen.service_seconds``).

    ``quality`` is any object with ``observe_event(edge)`` /
    ``observe_publish()`` — see
    :class:`~repro.obs.quality.StreamingQualityEvaluator`.
    """

    def __init__(
        self,
        service: "RecommendationService",
        edges: Sequence["StreamEdge"],
        process: ArrivalProcess,
        k: int = 10,
        query_every: int = 4,
        quality: Optional[object] = None,
        clock_fn: Optional[Callable[[], float]] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
    ):
        if not edges:
            raise ValueError("load generation needs at least one edge")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if query_every < 1:
            raise ValueError(f"query_every must be >= 1, got {query_every}")
        self.service = service
        self.edges = list(edges)
        self.process = process
        self.k = int(k)
        self.query_every = int(query_every)
        self.quality = quality
        self._clock = clock_fn if clock_fn is not None else time.perf_counter
        self._sleep = sleep_fn if sleep_fn is not None else time.sleep
        self._cond = threading.Condition()
        self._pending: Deque[RequestEnvelope] = deque()
        self._admission_done = False
        metrics = service.metrics
        self.hist_e2e = metrics.histogram("loadgen.e2e_seconds", hdr=True)
        self.hist_queue_wait = metrics.histogram(
            "loadgen.queue_wait_seconds", hdr=True
        )
        self.hist_service = metrics.histogram("loadgen.service_seconds", hdr=True)

    # ------------------------------------------------------------- worker side

    def _execute(self, env: RequestEnvelope) -> None:
        if self.quality is not None:
            # Hold-out scoring queries the served top-K for the event's
            # user *before* the service learns the event.
            self.quality.observe_event(env.edge)
            env.queried = True
        elif env.index % self.query_every == 0:
            self.service.recommend(int(env.edge.u), self.k)
            env.queried = True
        before = self._clock()
        try:
            env.accepted = bool(self.service.ingest(env.edge))
        finally:
            env.ingest_seconds = self._clock() - before
        if self.quality is not None:
            self.quality.observe_publish()

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._admission_done:
                    self._cond.wait()
                if not self._pending:
                    return
                env = self._pending.popleft()
            env.dispatched_at = self._clock()
            try:
                self._execute(env)
            except Exception as exc:  # shed/backpressure/update failures
                env.error = f"{type(exc).__name__}: {exc}"
            env.completed_at = self._clock()
            self.hist_e2e.observe(env.latency_seconds)
            self.hist_queue_wait.observe(env.queue_wait_seconds)
            self.hist_service.observe(env.service_seconds)

    # ---------------------------------------------------------- admission side

    def run(self) -> LoadReport:
        """Admit every edge on its scheduled arrival; returns the report."""
        offsets = self.process.offsets(len(self.edges))
        envelopes: List[RequestEnvelope] = []
        worker = threading.Thread(
            target=self._drain, name="repro-loadgen-worker", daemon=True
        )
        start = self._clock()
        worker.start()
        for i, edge in enumerate(self.edges):
            target = start + float(offsets[i])
            now = self._clock()
            while now < target:
                self._sleep(target - now)
                now = self._clock()
            env = RequestEnvelope(edge=edge, index=i, admitted_at=now)
            envelopes.append(env)
            with self._cond:
                self._pending.append(env)
                self._cond.notify()
        with self._cond:
            self._admission_done = True
            self._cond.notify()
        worker.join()
        end = self._clock()
        return self._build_report(envelopes, start, end)

    def _build_report(
        self, envelopes: List[RequestEnvelope], start: float, end: float
    ) -> LoadReport:
        e2e = np.asarray([e.latency_seconds for e in envelopes], dtype=np.float64)
        waits = np.asarray(
            [e.queue_wait_seconds for e in envelopes], dtype=np.float64
        )
        service = np.asarray(
            [e.service_seconds for e in envelopes], dtype=np.float64
        )
        # a request that errored before its ingest stamp carries NaN;
        # the ingest distribution is over the calls that happened
        ingest = np.asarray(
            [e.ingest_seconds for e in envelopes], dtype=np.float64
        )
        ingest = ingest[np.isfinite(ingest)]
        duration = end - start
        return LoadReport(
            process=self.process,
            requests=len(envelopes),
            accepted=sum(1 for e in envelopes if e.accepted),
            queried=sum(1 for e in envelopes if e.queried),
            errors=sum(1 for e in envelopes if e.error is not None),
            duration_seconds=duration,
            offered_rate=self.process.rate,
            achieved_rate=len(envelopes) / duration if duration > 0 else 0.0,
            e2e=_stats(e2e),
            queue_wait=_stats(waits),
            service=_stats(service),
            ingest_latency=_stats(ingest),
            e2e_samples=e2e,
            queue_wait_samples=waits,
            service_samples=service,
            ingest_samples=ingest,
        )


def hdr_bucket_error(
    hist: HdrHistogram, samples: Sequence[float], p: float
) -> int:
    """Bucket distance between the HDR quantile and the exact quantile.

    Replays nothing — compares ``hist.percentile(p)`` against the exact
    rank-based quantile of ``samples`` in bucket-index space.  The HDR
    accuracy contract is that this is at most 1 for any sample set the
    histogram actually observed.
    """
    exact = exact_percentile(samples, p)
    estimate = hist.percentile(p)
    return abs(hist.bucket_index(estimate) - hist.bucket_index(exact))


def measure_capacity(
    service: "RecommendationService",
    edges: Sequence["StreamEdge"],
    clock_fn: Optional[Callable[[], float]] = None,
) -> float:
    """Closed-loop calibration: events/second ingesting back-to-back.

    Drives ``service`` as fast as it will go (queries excluded) and
    returns the sustained rate — the saturation point an open-loop sweep
    positions its offered-rate tiers around.
    """
    if not edges:
        raise ValueError("capacity measurement needs at least one edge")
    clock = clock_fn if clock_fn is not None else time.perf_counter
    start = clock()
    for edge in edges:
        service.ingest(edge)
    service.flush()
    elapsed = clock() - start
    if elapsed <= 0:
        raise RuntimeError("capacity run finished in zero elapsed time")
    return len(edges) / elapsed


def run_offered_load_sweep(
    service_factory: Callable[[], "RecommendationService"],
    edges: Sequence["StreamEdge"],
    fractions: Sequence[float] = (0.25, 0.5, 2.0),
    kind: str = "poisson",
    seed: int = 0,
    k: int = 10,
    query_every: int = 4,
    clock_fn: Optional[Callable[[], float]] = None,
    sleep_fn: Optional[Callable[[float], None]] = None,
    quality_factory: Optional[Callable[..., object]] = None,
    tier_audit: Optional[Callable[..., None]] = None,
) -> Dict[str, object]:
    """Offered-load sweep: one open-loop tier per capacity fraction.

    First calibrates the service's closed-loop capacity on a throwaway
    instance, then runs each tier at ``fraction * capacity`` offered
    events/second against a *fresh* service (tiers never share model
    state).  Each tier reports exact p50/p99/p999 end-to-end latency
    split into queue wait vs service time, the producer-visible
    ``ingest()`` latency on its own, the ingest/admission ledger
    (accepted/rejected/dropped/shed, controller tallies), the
    service-internal stage percentiles (batch-buffer wait, train,
    publish), the HDR-vs-exact p999 bucket error, and — when
    ``quality_factory`` builds an evaluator per service — the online
    quality summary.

    ``tier_audit(service, tier)`` runs after each tier's run, while its
    service is still open: the hook for reconciliation and replay-parity
    checks (append findings to ``tier["audit"]`` —
    :func:`overload_gate_failures` folds ``tier["audit"]["failures"]``
    into the gate).
    """
    if not fractions:
        raise ValueError("sweep needs at least one offered-rate fraction")
    calibration = service_factory()
    try:
        capacity = measure_capacity(calibration, edges, clock_fn=clock_fn)
    finally:
        calibration.close()
    tiers: List[Dict[str, object]] = []
    for fraction in fractions:
        service = service_factory()
        try:
            quality = quality_factory(service) if quality_factory else None
            process = ArrivalProcess(
                kind=kind, rate=capacity * float(fraction), seed=seed
            )
            generator = OpenLoopLoadGenerator(
                service,
                edges,
                process,
                k=k,
                query_every=query_every,
                quality=quality,
                clock_fn=clock_fn,
                sleep_fn=sleep_fn,
            )
            report = generator.run()
            tier = report.as_dict()
            tier["fraction_of_capacity"] = float(fraction)
            tier["queue_wait_p99_below_service_p99"] = bool(
                report.queue_wait["p99"] < report.service["p99"]
            )
            tier["hdr_p999_bucket_error"] = hdr_bucket_error(
                generator.hist_e2e.hdr, report.e2e_samples, 99.9
            )
            metrics = service.metrics
            tier["stages"] = {
                "batch_wait_p99": metrics.histogram(
                    "latency.queue_wait_seconds"
                ).percentile(99.0),
                "train_p99": metrics.histogram("stage.train_seconds").percentile(
                    99.0
                ),
                "publish_p99": metrics.histogram(
                    "stage.publish_seconds"
                ).percentile(99.0),
            }
            queue = service.queue
            tier["ingest"] = {
                "accepted": queue.accepted,
                "rejected": queue.rejected,
                "dropped": queue.dropped,
                "shed": queue.shed,
                "by_reason": queue.deadletters_by_reason(),
            }
            admission = service.admission
            if admission is not None:
                tier["admission"] = dict(admission.counts())
                tier["admission"]["state"] = admission.state
            if quality is not None:
                tier["quality"] = quality.summary()
            if tier_audit is not None:
                tier_audit(service, tier)
            tiers.append(tier)
        finally:
            service.close()
    return {
        "capacity_events_per_second": capacity,
        "arrival": kind,
        "seed": seed,
        "requests_per_tier": len(edges),
        "tiers": tiers,
    }


def sweep_gate_failures(
    sweep: Dict[str, object], max_bucket_error: int = 1
) -> List[str]:
    """The loadtest gate: failure strings (empty = pass).

    Checks the acceptance contract of the sweep: at least three tiers;
    at the lowest sub-saturation tier queueing delay must not dominate
    (queue-wait p99 below service-time p99 — an open system below
    saturation spends its time being served, not waiting); and the HDR
    p999 must sit within ``max_bucket_error`` buckets of the exact
    quantile of the tier's replayed samples.
    """
    failures: List[str] = []
    tiers = sweep.get("tiers", [])
    if len(tiers) < 3:
        failures.append(f"sweep has {len(tiers)} tiers, need >= 3")
    sub_saturation = [t for t in tiers if t["fraction_of_capacity"] < 1.0]
    if not sub_saturation:
        failures.append("sweep has no sub-saturation tier (fraction < 1.0)")
    else:
        lowest = min(sub_saturation, key=lambda t: t["fraction_of_capacity"])
        if not lowest["queue_wait_p99_below_service_p99"]:
            failures.append(
                "sub-saturation tier (fraction "
                f"{lowest['fraction_of_capacity']}) has queue-wait p99 "
                f"{lowest['queue_wait']['p99']:.6f}s >= service-time p99 "
                f"{lowest['service']['p99']:.6f}s"
            )
    for tier in tiers:
        if tier["hdr_p999_bucket_error"] > max_bucket_error:
            failures.append(
                f"tier at fraction {tier['fraction_of_capacity']}: HDR p999 "
                f"is {tier['hdr_p999_bucket_error']} buckets from the exact "
                f"quantile (allowed {max_bucket_error})"
            )
    return failures


def overload_gate_failures(
    sweep: Dict[str, object],
    p99_ratio_max: float = 10.0,
    require_shedding: bool = True,
    ingest_p99_floor: float = 1e-6,
) -> List[str]:
    """The overload gate: failure strings (empty = pass).

    Checks the async-dispatch/admission acceptance contract over a
    sweep that drove past saturation:

    * a past-saturation tier (fraction > 1.0) and a sub-saturation
      reference tier both exist;
    * at every past-saturation tier the producer-visible ``ingest()``
      p99 stays below ``p99_ratio_max`` × the reference tier's — flat
      admission cost: the producer pays the accept/journal decision, not
      the training backlog (the reference p99 is floored at
      ``ingest_p99_floor`` seconds so a sub-microsecond baseline does
      not turn clock noise into a failure);
    * with ``require_shedding``, every past-saturation tier actually
      shed load (``ingest.shed > 0``) — shedding is measured, not
      assumed;
    * any failures a ``tier_audit`` hook recorded (ledger
      reconciliation mismatches, replay-parity breaks) fail the gate
      verbatim.
    """
    failures: List[str] = []
    tiers = sweep.get("tiers", [])
    over = [t for t in tiers if t["fraction_of_capacity"] > 1.0]
    sub = [t for t in tiers if t["fraction_of_capacity"] < 1.0]
    if not over:
        failures.append("sweep has no past-saturation tier (fraction > 1.0)")
    if not sub:
        failures.append("sweep has no sub-saturation tier (fraction < 1.0)")
    reference = (
        min(sub, key=lambda t: t["fraction_of_capacity"]) if sub else None
    )
    for tier in over:
        fraction = tier["fraction_of_capacity"]
        if reference is not None:
            ref_p99 = max(
                reference["ingest_latency"]["p99"], ingest_p99_floor
            )
            p99 = tier["ingest_latency"]["p99"]
            if p99 >= p99_ratio_max * ref_p99:
                failures.append(
                    f"tier at fraction {fraction}: ingest p99 {p99:.6f}s is "
                    f">= {p99_ratio_max:g}x the sub-saturation reference "
                    f"({ref_p99:.6f}s) — admission cost is not flat"
                )
        if require_shedding and tier.get("ingest", {}).get("shed", 0) <= 0:
            failures.append(
                f"tier at fraction {fraction}: shed nothing past "
                "saturation — admission control never engaged"
            )
    for tier in tiers:
        audit = tier.get("audit")
        if isinstance(audit, dict):
            for finding in audit.get("failures", []):
                failures.append(
                    f"tier at fraction {tier['fraction_of_capacity']}: "
                    f"{finding}"
                )
    return failures
