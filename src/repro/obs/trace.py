"""Nested span tracing with an aggregated parent/child span tree.

A span marks one timed region of a hot path::

    with tracer.span("core.engine.execute", edges=len(records)):
        ...

Spans nest: a span opened while another is active becomes its child, so
a traced run yields a call tree — per node the call count, total wall
seconds, self seconds (total minus children) and accumulated numeric
attributes.  Same-named spans under the same parent **aggregate** into
one node (count += 1, total += elapsed) rather than appending, which
keeps the tree bounded no matter how many batches replay through it.

Two tracer implementations share the interface:

* :class:`Tracer` (``enabled=True``) records spans on
  ``time.perf_counter`` and exposes the tree as JSON
  (:meth:`Tracer.as_dict`), an indented text rendering
  (:func:`format_span_tree`) and a self-time flame table
  (:func:`format_flame_table`).
* :class:`NullTracer` (``enabled=False``) is the default everywhere: its
  :meth:`~NullTracer.span` hands back one shared no-op context manager
  and :meth:`~NullTracer.wrap` returns the function unchanged, so
  instrumented code paths cost a single attribute check when tracing is
  off.  Hot loops that would pay even that per element should guard on
  ``tracer.enabled`` and skip instrumentation wholesale (the batched
  engine wraps its kernels only when enabled).

Tracing never touches model RNG streams — the bitwise engine-parity
contract (tests/core/test_engine_parity.py) holds with tracing on.

Span names follow ``layer.component.phase`` (DESIGN.md §10), e.g.
``core.inslearn.replay`` → ``core.engine.compile`` → ``core.plan.sample``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.utils.tables import format_table


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "total_seconds", "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        #: numeric attributes sum across calls; anything else keeps the
        #: most recent value.
        self.attrs: Dict[str, object] = {}
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span excluding its children."""
        return self.total_seconds - sum(
            c.total_seconds for c in self.children.values()
        )

    def merge_attrs(self, attrs: Dict[str, object]) -> None:
        for key, value in attrs.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.attrs[key] = value
            else:
                prior = self.attrs.get(key)
                if isinstance(prior, (int, float)) and not isinstance(prior, bool):
                    self.attrs[key] = prior + value
                else:
                    self.attrs[key] = value

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "self_seconds": self.self_seconds,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [
                self.children[name].as_dict() for name in sorted(self.children)
            ]
        return d


class _Span:
    """Live context manager for one :meth:`Tracer.span` entry."""

    __slots__ = ("_tracer", "_node", "_start")

    def __init__(self, tracer: "Tracer", node: SpanNode):
        self._tracer = tracer
        self._node = node
        self._start = 0.0

    def __enter__(self) -> SpanNode:
        self._start = time.perf_counter()
        return self._node

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        node = self._node
        node.count += 1
        node.total_seconds += elapsed
        # Exception-safe unwind: the stack entry is removed even when the
        # body raised, so the tracer stays usable afterwards.
        stack = self._tracer._stack
        if stack and stack[-1] is node:
            stack.pop()


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


class Tracer:
    """Recording tracer: spans aggregate into a tree under ``root``.

    Optionally carries the :class:`MetricsRegistry` the instrumented
    code should report counters/gauges into — instrumentation sites ask
    ``tracer.registry`` rather than threading a second handle through
    every layer.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.root = SpanNode("root")
        self._stack: List[SpanNode] = [self.root]

    def span(self, name: str, **attrs) -> _Span:
        node = self._stack[-1].child(name)
        if attrs:
            node.merge_attrs(attrs)
        self._stack.append(node)
        return _Span(self, node)

    def wrap(self, name: str, fn):
        """Wrap ``fn`` so every call is recorded as span ``name``.

        Used by the batched engine to attribute kernel self-times
        without touching the kernels themselves.
        """

        def traced(*args, **kwargs):
            with self.span(name):
                return fn(*args, **kwargs)

        traced.__name__ = getattr(fn, "__name__", name)
        return traced

    def attribute(self, name: str, seconds: float, count: int = 1, **attrs) -> None:
        """Record an externally measured duration as child span ``name``.

        For work timed off-thread: the tracer itself is single-threaded
        (``_stack`` is a plain list), so pool workers cannot open spans —
        instead the coordinator measures their wall time and attributes
        it here after the barrier (e.g. ``core.shard.worker0``).  The
        node lands under the *currently open* span, exactly where an
        inline ``span()`` of the same work would.
        """
        node = self._stack[-1].child(name)
        node.count += count
        node.total_seconds += seconds
        if attrs:
            node.merge_attrs(attrs)

    def reset(self) -> None:
        """Drop the recorded tree (the registry is left alone)."""
        self.root = SpanNode("root")
        self._stack = [self.root]

    def as_dict(self) -> Dict[str, object]:
        """The span tree as JSON-ready nested dicts (top-level spans only)."""
        return {
            "spans": [
                self.root.children[name].as_dict()
                for name in sorted(self.root.children)
            ]
        }

    def flame_rows(self) -> List[List[object]]:
        """Rows (name, count, total s, self s) ordered by self time.

        Same-named spans at different tree positions (e.g. an update
        triggered by ingest vs by flush) merge into one row, so the
        table answers "where does the time go per instrument" while the
        tree keeps the positional breakdown.
        """
        merged: Dict[str, List[object]] = {}

        def visit(node: SpanNode) -> None:
            row = merged.get(node.name)
            if row is None:
                merged[node.name] = [
                    node.name,
                    node.count,
                    node.total_seconds,
                    node.self_seconds,
                ]
            else:
                row[1] += node.count
                row[2] += node.total_seconds
                row[3] += node.self_seconds
            for name in sorted(node.children):
                visit(node.children[name])

        for name in sorted(self.root.children):
            visit(self.root.children[name])
        rows = list(merged.values())
        rows.sort(key=lambda r: r[3], reverse=True)
        return rows


class NullTracer:
    """The zero-cost default: every operation is a no-op."""

    enabled = False
    registry = None
    _NULL_SPAN = _NullSpan()

    def span(self, name: str, **attrs) -> _NullSpan:
        return self._NULL_SPAN

    def wrap(self, name: str, fn):
        return fn

    def attribute(self, name: str, seconds: float, count: int = 1, **attrs) -> None:
        return None

    def reset(self) -> None:
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"spans": []}

    def flame_rows(self) -> List[List[object]]:
        return []


#: Shared disabled tracer; instrumented modules default to this.
NULL_TRACER = NullTracer()


def make_tracer(
    spec: Union[bool, Tracer, NullTracer, None],
    registry: Optional[MetricsRegistry] = None,
) -> Union[Tracer, NullTracer]:
    """Resolve a tracer from a config-style value.

    ``True`` builds a recording :class:`Tracer` (over ``registry`` when
    given); ``False``/``None`` yield the shared :data:`NULL_TRACER`; an
    existing tracer instance passes through unchanged.
    """
    if isinstance(spec, (Tracer, NullTracer)):
        return spec
    if spec:
        return Tracer(registry=registry)
    return NULL_TRACER


def format_span_tree(
    tracer: Union[Tracer, NullTracer], precision: int = 4
) -> str:
    """Indented text rendering of the span tree."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        attrs = ""
        if node.attrs:
            attrs = "  {" + ", ".join(
                f"{k}={v}" for k, v in sorted(node.attrs.items())
            ) + "}"
        lines.append(
            f"{'  ' * depth}{node.name}  "
            f"calls={node.count}  "
            f"total={node.total_seconds:.{precision}f}s  "
            f"self={node.self_seconds:.{precision}f}s{attrs}"
        )
        for name in sorted(node.children):
            visit(node.children[name], depth + 1)

    if isinstance(tracer, NullTracer):
        return "(tracing disabled)"
    for name in sorted(tracer.root.children):
        visit(tracer.root.children[name], 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def format_flame_table(
    tracer: Union[Tracer, NullTracer], precision: int = 4
) -> str:
    """Self-time-ordered flat table of every span in the tree."""
    rows = tracer.flame_rows()
    if not rows:
        return "(no spans recorded)"
    return format_table(
        ["span", "calls", "total_s", "self_s"],
        rows,
        precision=precision,
        title="span self-times",
    )
