"""Declarative SLOs evaluated as multi-window, multi-burn-rate alerts.

An :class:`SLO` states an objective ("99.9% of recommendations under
50ms", "99% of ingests succeed", "staleness below 2 batches") against
instruments that already exist in the metrics registry.  The
:class:`SLOMonitor` periodically samples the cumulative good/bad split
for each SLO and evaluates **burn rates** over paired (long, short)
windows — the SRE-workbook alerting pattern: a burn rate of ``B`` means
the error budget ``1 - objective`` is being consumed ``B``× faster than
the objective allows, and an alert fires only when *both* the long
window (evidence the problem is real) and the short window (evidence it
is still happening) exceed the pair's threshold.  That construction
keeps alerts fast on hard outages and quiet on slow-burning noise.

SLO kinds and the instruments they read:

* ``latency`` — an HDR-backed histogram (:mod:`repro.obs.hdr`); the
  good/bad split at ``threshold`` seconds comes from exact bucket
  counts (:meth:`~repro.obs.hdr.HdrHistogram.good_bad`), so budget
  accounting is not subject to reservoir sampling noise.
* ``error_rate`` — two counters: ``metric`` (bad events) and
  ``total_metric`` (all events).
* ``staleness`` — a gauge sampled against ``threshold``: each
  :meth:`~SLOMonitor.sample` tick contributes one good/bad observation.

Evaluation state (cumulative samples per SLO, fired alerts) lives in a
bounded ring; burn-rate gauges, per-SLO bad-fraction gauges and alert
counters are exported through the shared registry so the existing
Prometheus/JSONL paths carry them with no extra wiring.  The clock is
injectable (default :func:`time.monotonic`; ``obs/`` is in the
clock-exemption scope) and both ``sample`` and ``evaluate`` accept an
explicit ``now`` so burn-rate math is exactly testable against
hand-computed fixtures.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.hdr import HdrHistogram
from repro.obs.metrics import Histogram, MetricsRegistry

SLO_KINDS = ("latency", "error_rate", "staleness")


@dataclass(frozen=True)
class SLO:
    """One service-level objective over registry instruments."""

    name: str
    kind: str  # latency | error_rate | staleness
    objective: float  # target good fraction, e.g. 0.999
    metric: str  # histogram (latency), bad counter (error_rate), gauge (staleness)
    threshold: Optional[float] = None  # seconds (latency) / bound (staleness)
    total_metric: Optional[str] = None  # error_rate: the all-events counter

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; pick one of {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind in ("latency", "staleness") and self.threshold is None:
            raise ValueError(f"{self.kind} SLO {self.name!r} needs a threshold")
        if self.kind == "error_rate" and self.total_metric is None:
            raise ValueError(
                f"error_rate SLO {self.name!r} needs a total_metric"
            )

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction: ``1 - objective``."""
        return 1.0 - self.objective

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "metric": self.metric,
            "threshold": self.threshold,
            "total_metric": self.total_metric,
        }


@dataclass(frozen=True)
class BurnWindow:
    """A (long, short) window pair with its alerting burn rate."""

    long_seconds: float
    short_seconds: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.long_seconds <= 0 or self.short_seconds <= 0:
            raise ValueError("window lengths must be > 0")
        if self.short_seconds >= self.long_seconds:
            raise ValueError(
                f"short window ({self.short_seconds}s) must be shorter than "
                f"the long window ({self.long_seconds}s)"
            )
        if self.max_burn_rate <= 0:
            raise ValueError(
                f"max_burn_rate must be > 0, got {self.max_burn_rate}"
            )


#: the SRE-workbook page-worthy pairs: 2% of a 30-day budget in 1h, or
#: 5% in 6h (scaled here to the harness's second-resolution clocks).
DEFAULT_WINDOWS = (
    BurnWindow(long_seconds=3600.0, short_seconds=300.0, max_burn_rate=14.4),
    BurnWindow(long_seconds=21600.0, short_seconds=1800.0, max_burn_rate=6.0),
)


@dataclass(frozen=True)
class AlertRecord:
    """One fired multi-window burn-rate alert."""

    slo: str
    at: float
    long_seconds: float
    short_seconds: float
    max_burn_rate: float
    burn_long: float
    burn_short: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "at": self.at,
            "long_seconds": self.long_seconds,
            "short_seconds": self.short_seconds,
            "max_burn_rate": self.max_burn_rate,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


@dataclass
class _SloState:
    """Ring of cumulative (t, bad, total) samples for one SLO."""

    samples: Deque[Tuple[float, float, float]] = field(default_factory=deque)
    # staleness SLOs accumulate their own good/bad totals tick by tick
    cumulative_bad: float = 0.0
    cumulative_total: float = 0.0


class SLOMonitor:
    """Sample cumulative good/bad splits and alert on burn rates.

    Thread-safe: one lock guards the per-SLO sample rings and the alert
    list.  Registry reads and gauge exports happen outside the lock —
    the registry is an injected collaborator and must not be called
    while holding it (hold-and-call discipline).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: Sequence[SLO],
        windows: Sequence[BurnWindow] = DEFAULT_WINDOWS,
        clock_fn: Optional[Callable[[], float]] = None,
        max_samples: int = 4096,
    ):
        if not slos:
            raise ValueError("monitor needs at least one SLO")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        if not windows:
            raise ValueError("monitor needs at least one burn window")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.registry = registry
        self.slos = tuple(slos)
        self.windows = tuple(windows)
        self.max_samples = int(max_samples)
        self._clock = clock_fn if clock_fn is not None else time.monotonic
        self._lock = threading.Lock()
        self._states: Dict[str, _SloState] = {slo.name: _SloState() for slo in slos}
        self._alerts: List[AlertRecord] = []
        # Pre-register exports so scrapes are fully populated up front.
        for slo in self.slos:
            registry.gauge(f"slo.{slo.name}.bad_fraction")
            registry.counter(f"slo.{slo.name}.alerts")
            for window in self.windows:
                registry.gauge(
                    f"slo.{slo.name}.burn.{int(window.long_seconds)}s"
                )

    # ------------------------------------------------------------------ intake

    def _read(self, slo: SLO) -> Tuple[float, float]:
        """Cumulative (bad, total) for latency/error SLOs; a single
        (exceeded, 1) observation for staleness SLOs."""
        if slo.kind == "staleness":
            value = float(self.registry.gauge(slo.metric).as_dict()["value"])
            return (1.0 if value > slo.threshold else 0.0, 1.0)
        if slo.kind == "error_rate":
            bad = float(self.registry.counter(slo.metric).as_dict()["value"])
            total = float(
                self.registry.counter(slo.total_metric).as_dict()["value"]
            )
            return (bad, total)
        instrument = self.registry.get(slo.metric)
        hdr = None
        if isinstance(instrument, HdrHistogram):
            hdr = instrument
        elif isinstance(instrument, Histogram):
            hdr = instrument.hdr
        if hdr is None:
            raise TypeError(
                f"latency SLO {slo.name!r} needs an HDR-backed histogram "
                f"registered at {slo.metric!r} (registry.histogram(name, "
                "hdr=True)); exact bucket counts are what make the "
                "good/bad split trustworthy"
            )
        good, bad = hdr.good_bad(slo.threshold)
        return (float(bad), float(good + bad))

    def sample(self, now: Optional[float] = None) -> None:
        """Record one cumulative (t, bad, total) point per SLO."""
        at = float(self._clock()) if now is None else float(now)
        readings = [(slo, self._read(slo)) for slo in self.slos]
        with self._lock:
            for slo, (bad, total) in readings:
                state = self._states[slo.name]
                if slo.kind == "staleness":
                    state.cumulative_bad += bad
                    state.cumulative_total += total
                    bad, total = state.cumulative_bad, state.cumulative_total
                state.samples.append((at, bad, total))
                while len(state.samples) > self.max_samples:
                    state.samples.popleft()

    # -------------------------------------------------------------- evaluation

    @staticmethod
    def _window_burn(
        samples: Sequence[Tuple[float, float, float]],
        window_seconds: float,
        error_budget: float,
        now: float,
    ) -> float:
        if not samples:
            return 0.0
        latest = samples[-1]
        cutoff = now - window_seconds
        baseline = samples[0]
        for point in samples:
            if point[0] <= cutoff:
                baseline = point
            else:
                break
        delta_bad = latest[1] - baseline[1]
        delta_total = latest[2] - baseline[2]
        if delta_total <= 0:
            return 0.0
        return (delta_bad / delta_total) / error_budget

    def burn_rate(
        self, slo_name: str, window_seconds: float, now: Optional[float] = None
    ) -> float:
        """The budget burn rate for one SLO over the trailing window."""
        at = float(self._clock()) if now is None else float(now)
        slo = next((s for s in self.slos if s.name == slo_name), None)
        if slo is None:
            raise KeyError(f"unknown SLO {slo_name!r}")
        with self._lock:
            samples = list(self._states[slo_name].samples)
        return self._window_burn(samples, window_seconds, slo.error_budget, at)

    def evaluate(self, now: Optional[float] = None) -> List[AlertRecord]:
        """Sample, compute burn rates, export gauges, fire alerts.

        Returns the alerts fired by *this* call (the full history stays
        on :attr:`alerts`).  An alert fires when both the long and the
        short window of a pair exceed its ``max_burn_rate``.
        """
        at = float(self._clock()) if now is None else float(now)
        self.sample(now=at)
        with self._lock:
            rings = {
                name: list(state.samples) for name, state in self._states.items()
            }
        fired: List[AlertRecord] = []
        exports: List[Tuple[str, float]] = []
        for slo in self.slos:
            samples = rings[slo.name]
            latest = samples[-1]
            fraction = latest[1] / latest[2] if latest[2] > 0 else 0.0
            exports.append((f"slo.{slo.name}.bad_fraction", fraction))
            for window in self.windows:
                burn_long = self._window_burn(
                    samples, window.long_seconds, slo.error_budget, at
                )
                burn_short = self._window_burn(
                    samples, window.short_seconds, slo.error_budget, at
                )
                exports.append(
                    (f"slo.{slo.name}.burn.{int(window.long_seconds)}s", burn_long)
                )
                if (
                    burn_long >= window.max_burn_rate
                    and burn_short >= window.max_burn_rate
                ):
                    fired.append(
                        AlertRecord(
                            slo=slo.name,
                            at=at,
                            long_seconds=window.long_seconds,
                            short_seconds=window.short_seconds,
                            max_burn_rate=window.max_burn_rate,
                            burn_long=burn_long,
                            burn_short=burn_short,
                        )
                    )
        for name, value in exports:
            self.registry.gauge(name).set(value)
        for alert in fired:
            self.registry.counter(f"slo.{alert.slo}.alerts").inc()
        if fired:
            with self._lock:
                self._alerts.extend(fired)
        return fired

    @property
    def alerts(self) -> List[AlertRecord]:
        """Every alert fired so far (a copy)."""
        with self._lock:
            return list(self._alerts)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            alerts = [a.as_dict() for a in self._alerts]
        return {
            "slos": [slo.as_dict() for slo in self.slos],
            "windows": [
                {
                    "long_seconds": w.long_seconds,
                    "short_seconds": w.short_seconds,
                    "max_burn_rate": w.max_burn_rate,
                }
                for w in self.windows
            ],
            "alerts": alerts,
        }

    def write_jsonl(self, path: str, label: Optional[str] = None) -> None:
        """Append the monitor state as one JSONL snapshot record."""
        from repro.obs.export import write_jsonl_snapshot

        write_jsonl_snapshot(path, label=label, extra={"slo": self.as_dict()})
