"""repro.replicate: WAL-shipping read replicas with bounded staleness.

Single-writer, many-reader replication built on the existing
durability layer — no new log format, no consensus:

* :mod:`~repro.replicate.config` — the shared on-disk layout (one
  directory per role) and the :class:`ReplicationConfig` knobs
  (heartbeat cadence, staleness bound, promotion policy);
* :mod:`~repro.replicate.primary` — :class:`ReplicationPrimary`, the
  writable update loop publishing its segment-rotated WAL plus
  clock-stamped heartbeat records;
* :mod:`~repro.replicate.follower` — :class:`ReplicationFollower`,
  which bootstraps from the newest shipped checkpoint, tails the WAL
  through :class:`~repro.resilience.wal.WalTailer`, replays decisions
  into its own store/index (bitwise-parity discipline borrowed from
  crash recovery) and serves read-only top-K with measured, bounded
  staleness — or promotes itself to writable when the primary dies;
* :mod:`~repro.replicate.failover` — :class:`FailoverDriver`, the
  seeded kill-primary chaos gate: ledger reconciliation, state
  fingerprint equality and top-K parity against an uninterrupted
  golden run.
"""

from repro.replicate.config import ReplicationConfig, checkpoint_dir, wal_path
from repro.replicate.failover import (
    FailoverDriver,
    FailoverReport,
    state_fingerprint,
)
from repro.replicate.follower import (
    ReplicationError,
    ReplicationFollower,
    StaleReadError,
)
from repro.replicate.primary import ReplicationPrimary

__all__ = [
    "ReplicationConfig",
    "checkpoint_dir",
    "wal_path",
    "FailoverDriver",
    "FailoverReport",
    "state_fingerprint",
    "ReplicationError",
    "ReplicationFollower",
    "StaleReadError",
    "ReplicationPrimary",
]
