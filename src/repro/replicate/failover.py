"""Kill-the-primary chaos: promote a follower, prove nothing was lost.

The :class:`FailoverDriver` is the replication layer's acceptance gate,
built in the image of :class:`~repro.resilience.faults.ChaosReplayDriver`
but spanning *two* nodes.  One seeded plan drives the whole run:

1. A :class:`~repro.replicate.primary.ReplicationPrimary` ingests the
   dataset stream (with seeded ``malformed``/``late``/``duplicate``
   faults riding along) while a bootstrapped
   :class:`~repro.replicate.follower.ReplicationFollower` tails its WAL
   and answers probe reads.
2. At the plan's ``crash`` position the primary is killed abruptly —
   its externally-visible tallies are banked first, exactly like the
   single-node chaos harness — the follower keeps serving reads
   through the outage (counted as ``reads_during_failover``), then
   drains the log and promotes.
3. The promoted follower ingests the rest of the stream, remaining
   faults included, and flushes.
4. A **golden** single-node service replays the identical stream +
   fault sequence uninterrupted.

The gate then demands three things at once:

- **ledger**: every injected fault is accounted for across both lives
  (``injected == observed`` per kind, zero mismatches);
- **state**: the promoted follower's flattened ``state_dict`` is
  bitwise identical to the golden run's (one SHA-256 over every
  parameter array);
- **reads**: the promoted follower's top-K equals the golden run's
  *and* its own brute-force ``offline_top_k`` for every parity user.

Why this must hold: the WAL journals queue decisions, so the follower
replays the primary's exact micro-batch boundaries; promotion inherits
the log and the FIFO residue, so resumed ingest cuts the same
boundaries the uninterrupted run would; and all randomness is seeded
through the shared model/trainer configs.  Any divergence — a dropped
record, a double-applied batch, a residue leak — breaks the SHA or the
ledger and fails the gate.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig
from repro.core.model import SUPA
from repro.datasets.base import Dataset
from repro.graph.streams import StreamEdge
from repro.replicate.config import ReplicationConfig
from repro.replicate.follower import ReplicationFollower
from repro.replicate.primary import ReplicationPrimary
from repro.resilience.checkpoint import _flatten
from repro.resilience.faults import FAULT_KINDS, FaultPlan, _malformed_edge
from repro.serve.service import RecommendationService, ServeConfig
from repro.utils.timer import Timer


def state_fingerprint(service: RecommendationService) -> str:
    """SHA-256 over the model's flattened ``state_dict`` arrays.

    Bitwise: two services fingerprint equal iff every parameter and
    optimiser-moment array matches byte for byte.
    """
    flat: Dict[str, np.ndarray] = {}
    _flatten(service.model.state_dict(), "", flat)
    digest = hashlib.sha256()
    for name in sorted(flat):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(flat[name]).tobytes())
    return digest.hexdigest()


@dataclass
class FailoverReport:
    """Everything one failover run injected, observed and reconciled."""

    dataset: str
    k: int
    num_events: int
    seed: int
    #: stream position where the primary was killed (the crash fault)
    kill_position: int
    ingest_seconds: float
    events_accepted: int
    num_updates: int
    #: reads served by the follower between primary death and promotion
    reads_during_failover: int
    #: events injected per fault kind
    injected: Dict[str, int] = field(default_factory=dict)
    #: what the two lives recorded, per reconciliation channel
    observed: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    reconciled: bool = False
    #: promoted state_dict SHA equals the golden run's
    fingerprint_match: bool = False
    parity_users: int = 0
    #: users whose promoted top-K == golden top-K == offline top-K
    parity_matches: int = 0
    parity_fraction: float = 0.0

    @property
    def passed(self) -> bool:
        """The full gate: ledger + state + reads, all at once."""
        return (
            self.reconciled
            and self.fingerprint_match
            and self.parity_matches == self.parity_users
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload."""
        return {
            "dataset": self.dataset,
            "k": self.k,
            "num_events": self.num_events,
            "seed": self.seed,
            "kill_position": self.kill_position,
            "ingest_seconds": self.ingest_seconds,
            "events_accepted": self.events_accepted,
            "num_updates": self.num_updates,
            "reads_during_failover": self.reads_during_failover,
            "injected": dict(self.injected),
            "observed": dict(self.observed),
            "mismatches": list(self.mismatches),
            "reconciled": self.reconciled,
            "fingerprint_match": self.fingerprint_match,
            "parity_users": self.parity_users,
            "parity_matches": self.parity_matches,
            "parity_fraction": self.parity_fraction,
            "passed": self.passed,
        }

    def write_json(self, path: str) -> str:
        """Persist the report; creates parent directories. Returns path."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(name, value) pairs for a printed summary table."""
        rows: List[Tuple[str, object]] = [
            ("dataset", self.dataset),
            ("events replayed", self.num_events),
            ("primary killed at", self.kill_position),
            ("events accepted", self.events_accepted),
            ("updates applied", self.num_updates),
            ("reads during failover", self.reads_during_failover),
        ]
        for kind in FAULT_KINDS:
            if self.injected.get(kind):
                rows.append((f"injected {kind}", self.injected[kind]))
        rows.extend(
            [
                ("ledger reconciled", "yes" if self.reconciled else "NO"),
                (
                    "state fingerprint",
                    "match" if self.fingerprint_match else "MISMATCH",
                ),
                (
                    f"top-{self.k} parity",
                    f"{self.parity_matches}/{self.parity_users}",
                ),
                ("gate", "PASS" if self.passed else "FAIL"),
            ]
        )
        if self.mismatches:
            rows.append(("mismatches", "; ".join(self.mismatches)))
        return rows


class FailoverDriver:
    """One seeded kill-primary → promote-follower → reconcile run.

    Parameters
    ----------
    dataset:
        Stream source shared by primary, follower and golden run.
    state_dir / replica_dir:
        The primary's directory and the promoted follower's; wiped up
        front when ``fresh`` (default) so sequence numbers start at 1.
    serve_config:
        Defaults to the chaos-sized config (small batches, small
        capacity, ``drop_new`` overflow, zero late tolerance); a
        ``late_tolerance`` is required so late faults have a contract.
    model_config / train_config:
        Always pinned to explicit seeded values (the replay-driver
        defaults) — all three services must walk identical stochastic
        paths or the fingerprint check is meaningless.
    malformed / late / duplicate:
        Fault counts for the seeded plan; exactly one ``crash`` is
        always scheduled (the kill).  Bursts are excluded: pause-based
        backpressure on the primary is exercised by the single-node
        chaos suite and would make golden alignment depend on pause
        timing rather than journaled decisions.
    poll_every:
        Follower tail cadence, in ingested events.
    probe_every:
        Read-probe cadence against the follower replica.
    """

    def __init__(
        self,
        dataset: Dataset,
        state_dir: str,
        replica_dir: str,
        k: int = 10,
        serve_config: Optional[ServeConfig] = None,
        model_config: Optional[SUPAConfig] = None,
        train_config: Optional[InsLearnConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        malformed: int = 2,
        late: int = 2,
        duplicate: int = 2,
        poll_every: int = 8,
        probe_every: int = 64,
        failover_probes: int = 4,
        max_parity_users: Optional[int] = 32,
        seed: int = 0,
        fresh: bool = True,
    ):
        if os.path.abspath(state_dir) == os.path.abspath(replica_dir):
            raise ValueError("state_dir and replica_dir must differ")
        if poll_every < 1:
            raise ValueError(f"poll_every must be >= 1, got {poll_every}")
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every}")
        self.dataset = dataset
        self.state_dir = state_dir
        self.replica_dir = replica_dir
        self.k = k
        self.serve_config = serve_config or ServeConfig(
            batch_size=32,
            capacity=128,
            overflow="drop_new",
            late_tolerance=0.0,
            warm_users=8,
        )
        if self.serve_config.late_tolerance is None:
            raise ValueError(
                "failover replay needs serve_config.late_tolerance set; "
                "late faults are defined relative to it"
            )
        self.model_config = model_config or SUPAConfig(
            dim=32, num_walks=2, walk_length=2, seed=seed
        )
        self.train_config = train_config or InsLearnConfig(
            batch_size=self.serve_config.batch_size,
            max_iterations=2,
            validation_interval=1,
            validation_size=25,
            patience=1,
            seed=seed,
        )
        self.replication = replication or ReplicationConfig(
            heartbeat_every=16, checkpoint_every=4
        )
        self.malformed = malformed
        self.late = late
        self.duplicate = duplicate
        self.poll_every = poll_every
        self.probe_every = probe_every
        self.failover_probes = failover_probes
        self.max_parity_users = max_parity_users
        self.seed = seed
        if fresh:
            for directory in (state_dir, replica_dir):
                if os.path.isdir(directory):
                    shutil.rmtree(directory)

    # ------------------------------------------------------------- injection

    def _inject(
        self,
        service: RecommendationService,
        kind: str,
        payload: int,
        template: StreamEdge,
        ledger: Dict[str, int],
    ) -> None:
        """Offer one fault event to whichever node is currently writable."""
        service.metrics.counter(f"faults.injected.{kind}").inc()
        if kind == "malformed":
            service.ingest(
                _malformed_edge(template, payload, self.dataset.num_nodes)
            )
        elif kind == "late":
            stale_t = (
                service.queue.max_timestamp
                - float(self.serve_config.late_tolerance or 0.0)
                - 1.0
                - float(payload)
            )
            service.ingest(template._replace(t=stale_t))
        else:  # duplicate
            if service.ingest(StreamEdge(*template)):
                ledger["duplicates_accepted"] += 1

    @staticmethod
    def _register_fault_counters(service: RecommendationService) -> None:
        for kind in FAULT_KINDS:
            service.metrics.counter(f"faults.injected.{kind}")

    @staticmethod
    def _bank(service: RecommendationService, banked: Dict[str, float]) -> None:
        """Fold a dying node's tallies into ``banked`` (ChaosReplayDriver's
        cross-life accounting, verbatim semantics)."""
        for category, count in service.queue.reason_counts.items():
            banked[category] = banked.get(category, 0) + count
        for kind in FAULT_KINDS:
            name = f"faults.injected.{kind}"
            banked[name] = (
                banked.get(name, 0) + service.metrics.counter(name).value
            )

    def _parity_users(self, service: RecommendationService) -> np.ndarray:
        users = service.users
        cap = self.max_parity_users
        if cap is None or users.size <= cap:
            return users
        picks = np.linspace(0, users.size - 1, cap).astype(np.int64)
        return users[picks]

    # ------------------------------------------------------------------ run

    def _golden(
        self, stream: List[StreamEdge], plan: FaultPlan, ledger: Dict[str, int]
    ) -> RecommendationService:
        """The uninterrupted single-node reference run: identical stream,
        identical fault sequence (crash excluded), no durability."""
        config = replace(
            self.serve_config,
            wal_path=None,
            checkpoint_dir=None,
            checkpoint_every=0,
            read_only=False,
        )
        model = SUPA.for_dataset(self.dataset, self.model_config)
        service = RecommendationService(
            self.dataset,
            model=model,
            config=config,
            train_config=self.train_config,
        )
        self._register_fault_counters(service)
        last_accepted: Optional[StreamEdge] = None
        for position, edge in enumerate(stream):
            for fault in plan.at(position):
                if fault.kind == "crash" or last_accepted is None:
                    continue
                self._inject(
                    service, fault.kind, fault.payload, last_accepted, ledger
                )
            if service.ingest(edge):
                last_accepted = edge
        service.flush()
        return service

    def run(self) -> FailoverReport:
        """Execute kill → promote → reconcile; returns the gate report."""
        stream = list(self.dataset.stream)
        plan = FaultPlan.seeded(
            len(stream),
            seed=self.seed,
            malformed=self.malformed,
            late=self.late,
            duplicate=self.duplicate,
            burst=0,
            crash=1,
        )
        injected = plan.injection_counts()
        kill_position = next(
            f.position for f in plan.faults if f.kind == "crash"
        )

        primary = ReplicationPrimary(
            self.dataset,
            self.state_dir,
            serve_config=self.serve_config,
            model_config=self.model_config,
            train_config=self.train_config,
            replication=self.replication,
        )
        self._register_fault_counters(primary.service)
        follower = ReplicationFollower(
            self.dataset,
            self.state_dir,
            replica_dir=self.replica_dir,
            serve_config=self.serve_config,
            model_config=self.model_config,
            train_config=self.train_config,
            replication=self.replication,
        ).bootstrap()

        banked: Dict[str, float] = {}
        ledger: Dict[str, int] = {"duplicates_accepted": 0}
        skipped: Dict[str, int] = {}
        reads_during_failover = 0
        promotions = 0
        probe_cursor = 0
        last_accepted: Optional[StreamEdge] = None
        users = primary.service.users

        timer = Timer()
        with timer:
            writable = primary.service
            for position, edge in enumerate(stream):
                for fault in plan.at(position):
                    if fault.kind == "crash":
                        # abrupt primary death: bank the dying node's
                        # tallies, keep serving reads off the replica,
                        # then drain + promote
                        writable.metrics.counter("faults.injected.crash").inc()
                        self._bank(writable, banked)
                        primary.kill()
                        for _ in range(self.failover_probes):
                            user = int(users[probe_cursor % users.size])
                            probe_cursor += 1
                            follower.recommend(user, self.k)
                            reads_during_failover += 1
                        follower.promote(self.replica_dir)
                        promotions += 1
                        writable = follower.service
                        self._register_fault_counters(writable)
                        continue
                    if last_accepted is None:
                        skipped[fault.kind] = skipped.get(fault.kind, 0) + 1
                        continue
                    self._inject(
                        writable, fault.kind, fault.payload, last_accepted,
                        ledger,
                    )
                if writable.ingest(edge):
                    last_accepted = edge
                if promotions == 0 and (position + 1) % self.poll_every == 0:
                    follower.poll()
                if (position + 1) % self.probe_every == 0:
                    user = int(users[probe_cursor % users.size])
                    probe_cursor += 1
                    follower.recommend(user, self.k)
            if promotions == 0:
                raise RuntimeError(
                    "the seeded plan scheduled no crash inside the stream"
                )
            follower.flush()

        promoted = follower.service
        golden_ledger: Dict[str, int] = {"duplicates_accepted": 0}
        golden = self._golden(stream, plan, golden_ledger)

        # ---------------------------------------------------- reconciliation
        for kind, count in skipped.items():
            injected[kind] -= count

        def bucket_total(category: str) -> int:
            return int(
                banked.get(category, 0)
                + promoted.queue.reason_counts.get(category, 0)
            )

        def counter_total(kind: str) -> int:
            name = f"faults.injected.{kind}"
            return int(
                banked.get(name, 0) + promoted.metrics.counter(name).value
            )

        mismatches: List[str] = []

        def check(label: str, expected: object, got: object) -> None:
            if expected != got:
                mismatches.append(f"{label}: expected {expected}, got {got}")

        check(
            "malformed deadletters",
            injected["malformed"],
            bucket_total("malformed"),
        )
        check("late deadletters", injected["late"], bucket_total("late event"))
        check(
            "duplicates accepted",
            injected["duplicate"],
            ledger["duplicates_accepted"],
        )
        check("promotions", injected["crash"], promotions)
        for kind in ("malformed", "late", "duplicate", "crash"):
            check(f"{kind} counter", injected[kind], counter_total(kind))
        check(
            "accepted ledger (golden vs promoted)",
            golden.queue.accepted,
            promoted.queue.accepted,
        )
        check(
            "updates applied (golden vs promoted)",
            int(golden.metrics.counter("updates.applied").value),
            int(promoted.metrics.counter("updates.applied").value),
        )
        check(
            "duplicates accepted (golden vs promoted)",
            golden_ledger["duplicates_accepted"],
            ledger["duplicates_accepted"],
        )

        fingerprint_match = state_fingerprint(promoted) == state_fingerprint(
            golden
        )

        parity_users = self._parity_users(promoted)
        matches = 0
        for user in parity_users:
            served = promoted.recommend(int(user), self.k)
            reference = golden.recommend(int(user), self.k)
            offline = promoted.offline_top_k(int(user), self.k)
            if np.array_equal(served, reference) and np.array_equal(
                served, offline
            ):
                matches += 1

        report = FailoverReport(
            dataset=self.dataset.name,
            k=self.k,
            num_events=len(stream),
            seed=self.seed,
            kill_position=kill_position,
            ingest_seconds=timer.elapsed,
            events_accepted=promoted.queue.accepted,
            num_updates=int(
                promoted.metrics.counter("updates.applied").value
            ),
            reads_during_failover=reads_during_failover,
            injected=injected,
            observed={
                "malformed": bucket_total("malformed"),
                "late": bucket_total("late event"),
                "duplicates_accepted": ledger["duplicates_accepted"],
                "promotions": promotions,
                "records_shipped": int(
                    follower.tailer.records_read if follower.tailer else 0
                ),
                "bytes_shipped": int(
                    follower.tailer.bytes_read if follower.tailer else 0
                ),
            },
            mismatches=mismatches,
            reconciled=not mismatches,
            fingerprint_match=fingerprint_match,
            parity_users=int(parity_users.size),
            parity_matches=matches,
            parity_fraction=(
                matches / parity_users.size if parity_users.size else 1.0
            ),
        )
        golden.close()
        follower.close()
        return report
