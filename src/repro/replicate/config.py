"""Replication knobs and the on-disk layout both roles agree on.

A replicated deployment is one directory per role: the primary owns
``state_dir`` (its WAL segments + checkpoints), and each follower that
gets promoted owns a ``replica_dir`` with the identical layout.  The
layout functions here are the single source of truth for where the
shipped files live, so the primary, follower, failover driver and CLI
can never disagree about paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

#: WAL file name inside a role's state directory
WAL_BASENAME = "replicate.wal"

#: checkpoint directory name inside a role's state directory
CHECKPOINT_DIRNAME = "checkpoints"


def wal_path(state_dir: str) -> str:
    """The WAL root inside ``state_dir`` (segments rotate beside it)."""
    return os.path.join(state_dir, WAL_BASENAME)


def checkpoint_dir(state_dir: str) -> str:
    """The checkpoint directory inside ``state_dir``."""
    return os.path.join(state_dir, CHECKPOINT_DIRNAME)


@dataclass
class ReplicationConfig:
    """Knobs shared by the primary and follower roles.

    The staleness contract: a follower that polls at least every
    ``heartbeat_timeout_seconds`` and applies what it fetches is never
    more than one poll interval plus one heartbeat interval behind the
    primary; ``max_lag_records`` bounds how far behind a replica may be
    before ``stale_reads="reject"`` refuses to answer.
    """

    #: primary: emit a heartbeat record every N accepted events
    heartbeat_every: int = 32
    #: follower: primary silence threshold before promotion is advised
    heartbeat_timeout_seconds: float = 5.0
    #: staleness bound (records behind at last poll) for reject-mode reads
    max_lag_records: int = 1024
    #: ``"allow"`` serves bounded-stale answers; ``"reject"`` raises
    #: :class:`~repro.replicate.follower.StaleReadError` past the bound
    stale_reads: str = "allow"
    #: primary WAL segment rotation size (None = single file)
    wal_segment_bytes: Optional[int] = 1 << 20
    #: checkpoint cadence (applied updates) for primary and promoted nodes
    checkpoint_every: int = 8

    def __post_init__(self) -> None:
        if self.heartbeat_every < 1:
            raise ValueError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}"
            )
        if self.heartbeat_timeout_seconds <= 0:
            raise ValueError(
                "heartbeat_timeout_seconds must be > 0, got "
                f"{self.heartbeat_timeout_seconds}"
            )
        if self.max_lag_records < 0:
            raise ValueError(
                f"max_lag_records must be >= 0, got {self.max_lag_records}"
            )
        if self.stale_reads not in ("allow", "reject"):
            raise ValueError(
                f"stale_reads must be 'allow' or 'reject', got "
                f"{self.stale_reads!r}"
            )
        if self.wal_segment_bytes is not None and self.wal_segment_bytes < 1:
            raise ValueError(
                "wal_segment_bytes must be >= 1 when set, got "
                f"{self.wal_segment_bytes}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
