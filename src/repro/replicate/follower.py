"""The follower role: bootstrap from a checkpoint, tail the WAL, serve.

A :class:`ReplicationFollower` rebuilds the primary's learned state
with exactly the machinery crash recovery trusts — newest checkpoint +
WAL-prefix fold + deterministic replay — and then keeps replaying live:
each :meth:`poll` fetches newly shipped records through a
:class:`~repro.resilience.wal.WalTailer` and applies them to the
replica's own :class:`~repro.serve.store.VersionedEmbeddingStore` /
:class:`~repro.serve.index.TopKIndex`.  Because the WAL journals queue
*decisions* (including exact micro-batch boundaries), the replica's
model walks the identical stochastic path as the primary and its
published snapshots are bitwise equal at every applied sequence number.

Reads are served from the replica's latest published snapshot with
**bounded staleness**: gauges ``replica.seq_lag`` (records behind at
the start of the last poll), ``replica.lag_seconds`` (age of the
newest heartbeat stamp) and ``replica.backlog_bytes`` (unshipped bytes
on disk) expose the bound, and ``stale_reads="reject"`` turns it into a
hard refusal past ``max_lag_records``.

Promotion (:meth:`promote`) is the failover state machine's last step:
drain the shipped log to its end, *inherit* it — the segments are
copied into the replica's own directory so the new timeline keeps the
full decision history — flip the service writable, preload the
surviving FIFO residue, and checkpoint immediately so the promoted
node is recoverable from its own state from the first post-promotion
event.

Threading: one driver thread calls ``bootstrap``/``poll``/``promote``;
the internal lock makes the replication position and lag observables
safely readable from other threads (serving threads, metric scrapes).
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from dataclasses import replace
from typing import Callable, List, Optional

import numpy as np

from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig, InsLearnTrainer
from repro.core.model import SUPA
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream, StreamEdge
from repro.replicate.config import ReplicationConfig, checkpoint_dir, wal_path
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.recovery import fold_queue_log
from repro.resilience.wal import WalRecord, WalTailer, iter_records, segment_paths
from repro.serve.service import RecommendationService, ServeConfig

#: follower lifecycle states (the promote state machine, DESIGN.md §13)
BOOTSTRAPPING = "bootstrapping"
TAILING = "tailing"
PROMOTED = "promoted"


class ReplicationError(RuntimeError):
    """The shipped log contradicts the replica, or a protocol misuse."""


class StaleReadError(RuntimeError):
    """A ``stale_reads="reject"`` replica was asked to serve past its bound."""


class ReplicationFollower:
    """Tail a primary's WAL into a read-only serving replica.

    Parameters
    ----------
    dataset:
        Must be the primary's dataset (checkpoints cross-check
        ``num_nodes``).
    state_dir:
        The *primary's* state directory (shipped WAL + checkpoints).
    replica_dir:
        This replica's own directory, used only on promotion; may also
        be passed to :meth:`promote` directly.
    serve_config / model_config / train_config:
        Must match the primary's — replay re-derives state, it does not
        ship hyper-parameters.  The follower forces ``read_only=True``
        and strips the resilience knobs until promotion.
    replication:
        Staleness bound, heartbeat timeout and promotion knobs.
    clock:
        Injectable time source (seconds) for heartbeat-age accounting;
        defaults to :func:`time.monotonic` and must share a clock
        domain with the primary's heartbeat stamps.
    """

    def __init__(
        self,
        dataset: Dataset,
        state_dir: str,
        replica_dir: Optional[str] = None,
        serve_config: Optional[ServeConfig] = None,
        model_config: Optional[SUPAConfig] = None,
        train_config: Optional[InsLearnConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        trace: bool = False,
    ):
        self.dataset = dataset
        self.state_dir = state_dir
        self.replica_dir = replica_dir
        self.replication = replication or ReplicationConfig()
        self._model_config = model_config
        self._train_config = train_config
        self._trace = trace
        self._clock = clock if clock is not None else time.monotonic
        base = serve_config or ServeConfig()
        # the primary's log is this replica's durability until promotion
        self._serve_config = replace(
            base,
            read_only=True,
            wal_path=None,
            checkpoint_dir=None,
            checkpoint_every=0,
        )
        self.service: Optional[RecommendationService] = None
        self.tailer: Optional[WalTailer] = None
        # Guards the replication position (applied seq, FIFO mirror,
        # ledger tallies, heartbeat observations, lifecycle state) so
        # lag probes and serving threads read a consistent view while
        # the poll thread advances it.
        self._lock = threading.Lock()
        self._fifo: List[StreamEdge] = []
        self._accepted_total = 0
        self._watermark = float("-inf")
        self._state = BOOTSTRAPPING
        self._last_seq_applied = 0
        self._last_hb_primary_t: Optional[float] = None
        self._last_hb_seen_at: Optional[float] = None
        self._heartbeats_seen = 0
        self._lag_records = 0

    # -------------------------------------------------------------- bootstrap

    def bootstrap(self) -> "ReplicationFollower":
        """Rebuild state from the newest shipped checkpoint + WAL prefix.

        Uses the same fold/replay/cross-check discipline as
        :func:`repro.resilience.recovery.recover`, then drains whatever
        WAL suffix already exists and warms the read cache.  Returns
        ``self`` for chaining.
        """
        if self.service is not None:
            raise ReplicationError("follower is already bootstrapped")
        shipped_wal = wal_path(self.state_dir)
        manager = CheckpointManager(
            checkpoint_dir(self.state_dir),
            retain=self._serve_config.checkpoint_retain,
        )
        ckpt = manager.latest()
        base_seq = ckpt.seq if ckpt is not None else 0
        prefix = fold_queue_log(iter_records(shipped_wal), upto_seq=base_seq)
        if ckpt is not None:
            if list(ckpt.residue) != prefix.fifo:
                raise ReplicationError(
                    "shipped checkpoint residue disagrees with the WAL "
                    f"prefix ({len(ckpt.residue)} vs {len(prefix.fifo)} "
                    "buffered events)"
                )
            if ckpt.num_nodes and ckpt.num_nodes != self.dataset.num_nodes:
                raise ReplicationError(
                    f"shipped checkpoint covers {ckpt.num_nodes} nodes but "
                    f"the dataset has {self.dataset.num_nodes}"
                )

        model = SUPA.for_dataset(self.dataset, self._model_config)
        for edge in prefix.trained:
            model.observe(edge.u, edge.v, edge.edge_type, edge.t)
        if ckpt is not None:
            model.load_state_dict(ckpt.model_state)
            model.rng.bit_generator.state = ckpt.model_rng_state
        train_config = self._train_config or InsLearnConfig(
            batch_size=self._serve_config.batch_size,
            max_iterations=4,
            validation_interval=2,
            validation_size=25,
            patience=1,
        )
        trainer = InsLearnTrainer(model, train_config)
        if ckpt is not None:
            trainer.set_rng_state(ckpt.trainer_rng_state)

        service = RecommendationService(
            self.dataset,
            model=model,
            trainer=trainer,
            config=self._serve_config,
            trace=self._trace,
            initial_clock=ckpt.clock if ckpt is not None else 0.0,
        )
        service.restore_runtime(
            updates_applied=ckpt.updates_applied if ckpt is not None else 0,
            max_timestamp=prefix.watermark,
        )
        for name in (
            "replica.records_applied",
            "replica.batches_applied",
            "replica.heartbeats_seen",
            "replica.bytes_shipped",
        ):
            service.metrics.counter(name)
        for name in (
            "replica.seq_lag",
            "replica.lag_seconds",
            "replica.backlog_bytes",
        ):
            service.metrics.gauge(name)
        self.service = service
        with self._lock:
            self._fifo = list(prefix.fifo)
            self._accepted_total = prefix.accepted
            self._watermark = prefix.watermark
            self._last_seq_applied = base_seq
            self._state = TAILING
        self.tailer = WalTailer(shipped_wal, from_seq=base_seq + 1)
        self.poll()  # drain the suffix that already exists on disk
        service.warm_cache()
        return self

    # ---------------------------------------------------------------- tailing

    def poll(self, max_records: Optional[int] = None) -> int:
        """Fetch and apply newly shipped records; returns the count.

        Applies every complete record the tailer returns — a torn tail
        at the shipped log's EOF simply stays pending for the next
        poll.  Updates the lag gauges afterwards.
        """
        if self.tailer is None:
            raise ReplicationError("call bootstrap() before poll()")
        before = self.tailer.bytes_read
        records = self.tailer.poll(max_records=max_records)
        with self._lock:
            self._lag_records = len(records)
        for record in records:
            self._apply(record)
        self._publish_lag(applied=len(records), bytes_before=before)
        return len(records)

    def _apply(self, record: WalRecord) -> None:
        """Replay one shipped record into the replica's state."""
        if record.kind == "heartbeat":
            now = self._clock()
            with self._lock:
                self._heartbeats_seen += 1
                self._last_hb_primary_t = record.t
                self._last_hb_seen_at = now
                self._last_seq_applied = record.seq
            return
        if record.kind in ("shed", "throttle"):
            # Admission-ledger records: the primary denied the event, so
            # there is nothing to replay — advance the position only.
            with self._lock:
                self._last_seq_applied = record.seq
            return
        if record.kind == "accept":
            with self._lock:
                self._fifo.append(record.edge)
                self._accepted_total += 1
                self._watermark = max(self._watermark, record.edge.t)
                self._last_seq_applied = record.seq
            return
        if record.kind == "evict":
            with self._lock:
                if not self._fifo or self._fifo[0] != record.edge:
                    raise ReplicationError(
                        f"evict record #{record.seq} does not match the "
                        "replica's queue head"
                    )
                self._fifo.pop(0)
                self._last_seq_applied = record.seq
            return
        # batch: hand the chunk to the deterministic replay machinery
        with self._lock:
            if record.count > len(self._fifo):
                raise ReplicationError(
                    f"batch record #{record.seq} dispatches {record.count} "
                    f"events but the replica buffers {len(self._fifo)}"
                )
            chunk = self._fifo[: record.count]
            del self._fifo[: record.count]
            self._last_seq_applied = record.seq
        with self.service.resilience_suspended():
            self.service.apply_recovered_batch(EdgeStream(chunk))
        self.service.metrics.counter("replica.batches_applied").inc()

    def _publish_lag(self, applied: int, bytes_before: int) -> None:
        """Refresh the staleness observables after a poll."""
        metrics = self.service.metrics
        now = self._clock()
        with self._lock:
            hb_t = self._last_hb_primary_t
        metrics.counter("replica.records_applied").inc(applied)
        metrics.counter("replica.bytes_shipped").inc(
            max(0, self.tailer.bytes_read - bytes_before)
        )
        metrics.counter("replica.heartbeats_seen").set(self.heartbeats_seen)
        metrics.gauge("replica.seq_lag").set(applied)
        metrics.gauge("replica.backlog_bytes").set(self.tailer.backlog_bytes)
        if hb_t is not None:
            metrics.gauge("replica.lag_seconds").set(max(0.0, now - hb_t))

    # ---------------------------------------------------------------- serving

    def recommend(self, user: int, k: int = 10) -> np.ndarray:
        """Read-only top-``k`` from the replica's published snapshot.

        Under ``stale_reads="reject"`` a replica whose last poll was
        more than ``max_lag_records`` behind refuses with
        :class:`StaleReadError` instead of serving a stale answer.
        """
        if self.service is None:
            raise ReplicationError("call bootstrap() before recommend()")
        if self.replication.stale_reads == "reject":
            with self._lock:
                lag = self._lag_records
            if lag > self.replication.max_lag_records:
                raise StaleReadError(
                    f"replica was {lag} records behind at its last poll "
                    f"(bound {self.replication.max_lag_records})"
                )
        return self.service.recommend(user, k)

    # ------------------------------------------------------------- promotion

    def primary_silent(self, timeout_seconds: Optional[float] = None) -> bool:
        """True when no heartbeat arrived within the timeout.

        Measured against the follower clock at the moment the last
        heartbeat was *applied* — keep polling, or silence and a stalled
        poller look alike.  ``False`` until the first heartbeat lands.
        """
        timeout = (
            timeout_seconds
            if timeout_seconds is not None
            else self.replication.heartbeat_timeout_seconds
        )
        now = self._clock()
        with self._lock:
            seen_at = self._last_hb_seen_at
        if seen_at is None:
            return False
        return (now - seen_at) > timeout

    def promote(self, replica_dir: Optional[str] = None) -> None:
        """Flip the drained replica into a writable primary-in-waiting.

        The sequence (each step idempotent-safe to observe mid-way):

        1. drain — poll until the shipped log yields nothing more;
        2. inherit — copy the primary's WAL segments into
           ``replica_dir`` so the new timeline owns the full decision
           history (its own ``recover()`` replays it end to end);
        3. attach — open the inherited WAL + a fresh checkpoint manager
           on the service and flip it writable;
        4. restore — preload the surviving FIFO residue and the
           accepted-event ledger into the queue;
        5. checkpoint — immediately, so the promoted node is
           recoverable without replaying the whole inherited log.
        """
        if self.service is None:
            raise ReplicationError("call bootstrap() before promote()")
        with self._lock:
            if self._state == PROMOTED:
                raise ReplicationError("follower is already promoted")
        target = replica_dir if replica_dir is not None else self.replica_dir
        if target is None:
            raise ReplicationError("promote() needs a replica_dir")
        if os.path.abspath(target) == os.path.abspath(self.state_dir):
            raise ReplicationError(
                "replica_dir must differ from the primary's state_dir"
            )
        while self.poll():
            pass

        shipped_wal = wal_path(self.state_dir)
        own_wal = wal_path(target)
        os.makedirs(target, exist_ok=True)
        for segment in segment_paths(shipped_wal):
            shutil.copyfile(segment, own_wal + segment[len(shipped_wal):])

        service = self.service
        service.attach_durability(
            own_wal,
            checkpoint_dir=checkpoint_dir(target),
            checkpoint_every=self.replication.checkpoint_every,
        )
        with self._lock:
            fifo = list(self._fifo)
            accepted = self._accepted_total
            watermark = self._watermark
            applied_seq = self._last_seq_applied
        if service.wal.last_seq != applied_seq:
            raise ReplicationError(
                f"inherited WAL ends at seq {service.wal.last_seq} but the "
                f"replica applied through seq {applied_seq}"
            )
        if fifo:
            service.queue.preload(fifo)
        service.queue.restore_accounting(
            accepted=accepted, max_timestamp=watermark
        )
        service.metrics.counter("ingest.accepted").set(service.queue.accepted)
        service.set_writable()
        with self._lock:
            self._state = PROMOTED
        self.replica_dir = target
        service.checkpoint()
        service.metrics.gauge("replica.seq_lag").set(0)
        service.metrics.gauge("replica.backlog_bytes").set(0)

    def ingest(self, edge: StreamEdge) -> bool:
        """Offer one event to a *promoted* replica (the new writer)."""
        with self._lock:
            state = self._state
        if state != PROMOTED:
            raise ReplicationError(
                "follower is read-only until promoted; reads only"
            )
        return self.service.ingest(edge)

    def flush(self) -> int:
        """Drain the promoted replica's buffered events (quiesce)."""
        with self._lock:
            state = self._state
        if state != PROMOTED:
            raise ReplicationError("only a promoted follower can flush")
        return self.service.flush()

    # ------------------------------------------------------------- inspection

    @property
    def state(self) -> str:
        """Lifecycle state: bootstrapping → tailing → promoted."""
        with self._lock:
            return self._state

    @property
    def applied_seq(self) -> int:
        """Newest shipped sequence number applied to the replica."""
        with self._lock:
            return self._last_seq_applied

    @property
    def accepted_total(self) -> int:
        """Accept records applied so far (the inherited ledger)."""
        with self._lock:
            return self._accepted_total

    @property
    def residue(self) -> int:
        """Accepted-but-untrained events mirrored from the primary queue."""
        with self._lock:
            return len(self._fifo)

    @property
    def heartbeats_seen(self) -> int:
        with self._lock:
            return self._heartbeats_seen

    @property
    def lag_records(self) -> int:
        """Records the replica was behind at the start of its last poll."""
        with self._lock:
            return self._lag_records

    def lag_from(self, primary_seq: int) -> int:
        """Records behind a known primary position (external measure)."""
        with self._lock:
            return max(0, int(primary_seq) - self._last_seq_applied)

    def close(self) -> None:
        """Release the replica's own WAL handle, if promotion opened one."""
        if self.service is not None:
            self.service.close()
