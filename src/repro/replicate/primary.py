"""The primary role: the single writer whose WAL is the shipped truth.

A :class:`ReplicationPrimary` is a thin shell around the existing
:class:`~repro.serve.service.RecommendationService` update loop.  It
adds exactly two replication duties:

1. **Own the shipped layout** — the WAL (with segment rotation) and the
   checkpoints live under one ``state_dir`` that followers read from
   (:mod:`repro.replicate.config` fixes the paths).
2. **Prove liveness** — every ``heartbeat_every`` accepted events a
   ``heartbeat`` record stamped with the primary's clock is appended to
   the WAL.  Followers measure staleness against these stamps and treat
   their absence as primary death (the promote trigger).

Single-writer contract: one thread drives ``ingest``/``heartbeat``;
the underlying service and WAL are themselves thread-safe, but the
heartbeat cadence counter is intentionally unsynchronised.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Callable, Optional

import numpy as np

from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig
from repro.core.model import SUPA
from repro.datasets.base import Dataset
from repro.graph.streams import StreamEdge
from repro.replicate.config import ReplicationConfig, checkpoint_dir, wal_path
from repro.serve.service import RecommendationService, ServeConfig


class ReplicationPrimary:
    """Run the writable update loop while publishing its WAL.

    Parameters
    ----------
    dataset:
        Node universe and schema, shared verbatim with every follower.
    state_dir:
        Directory this primary owns; the WAL and checkpoints are always
        placed at the layout paths inside it (any ``wal_path`` /
        ``checkpoint_dir`` already set on ``serve_config`` is
        overridden — followers must be able to find the files).
    serve_config / model_config / train_config:
        Forwarded to the service; the resilience knobs are filled in
        from ``state_dir`` and ``replication``.
    replication:
        Heartbeat cadence and WAL rotation knobs
        (:class:`~repro.replicate.config.ReplicationConfig`).
    clock:
        Injectable time source for heartbeat stamps (seconds); defaults
        to :func:`time.monotonic`.  Followers compare these stamps to
        their own clock, so both sides must share a clock domain (true
        for WAL shipping over a shared filesystem on one host).
    """

    def __init__(
        self,
        dataset: Dataset,
        state_dir: str,
        serve_config: Optional[ServeConfig] = None,
        model_config: Optional[SUPAConfig] = None,
        train_config: Optional[InsLearnConfig] = None,
        replication: Optional[ReplicationConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        trace: bool = False,
    ):
        self.dataset = dataset
        self.state_dir = state_dir
        self.replication = replication or ReplicationConfig()
        self._clock = clock if clock is not None else time.monotonic
        os.makedirs(state_dir, exist_ok=True)
        base = serve_config or ServeConfig()
        config = replace(
            base,
            wal_path=wal_path(state_dir),
            checkpoint_dir=checkpoint_dir(state_dir),
            checkpoint_every=(
                base.checkpoint_every
                if base.checkpoint_every > 0
                else self.replication.checkpoint_every
            ),
            wal_segment_bytes=(
                base.wal_segment_bytes
                if base.wal_segment_bytes is not None
                else self.replication.wal_segment_bytes
            ),
        )
        model = SUPA.for_dataset(dataset, model_config)
        self.service = RecommendationService(
            dataset,
            model=model,
            config=config,
            train_config=train_config,
            trace=trace,
        )
        self.service.metrics.counter("replica.heartbeats")
        self._since_heartbeat = 0
        # announce liveness before the first event so a follower that
        # bootstraps against an idle primary still sees a heartbeat
        self.heartbeat()

    # ------------------------------------------------------------- publishing

    def ingest(self, edge: StreamEdge) -> bool:
        """Offer one event; heartbeats ride along at the configured cadence."""
        accepted = self.service.ingest(edge)
        self._since_heartbeat += 1
        if self._since_heartbeat >= self.replication.heartbeat_every:
            self.heartbeat()
        return accepted

    def heartbeat(self) -> None:
        """Append one liveness record stamped with the primary clock."""
        self.service.wal.append_heartbeat(self._clock())
        self._since_heartbeat = 0
        self.service.metrics.counter("replica.heartbeats").inc()

    def flush(self) -> int:
        """Drain buffered events through updates (quiesce)."""
        return self.service.flush()

    def checkpoint(self) -> Optional[str]:
        """Write one atomic checkpoint now; returns its path."""
        return self.service.checkpoint()

    # ---------------------------------------------------------------- serving

    def recommend(self, user: int, k: int = 10) -> np.ndarray:
        """Top-``k`` from the primary's own published snapshot."""
        return self.service.recommend(user, k)

    # ------------------------------------------------------------- inspection

    @property
    def last_seq(self) -> int:
        """WAL position of the newest shipped record."""
        return self.service.wal.last_seq

    @property
    def metrics(self):
        return self.service.metrics

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Graceful stop: release the WAL handle (buffered events stay
        journaled; a follower inherits them as queue residue)."""
        self.service.close()

    def kill(self) -> None:
        """Simulate abrupt primary death: drop the WAL handle without
        flushing, checkpointing or farewell heartbeats."""
        self.service.close()

    def __enter__(self) -> "ReplicationPrimary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
