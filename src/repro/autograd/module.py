"""Lightweight parameter containers for the baseline models.

A :class:`Module` recursively collects :class:`Parameter` attributes so an
optimiser can be constructed from ``module.parameters()``; ``state_dict``
/ ``load_state_dict`` give the checkpoint/restore that InsLearn-style
best-model selection needs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always gradient-tracked and owned by a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class collecting parameters from attributes (and sub-modules)."""

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        seen = set()
        for name, value in sorted(vars(self).items()):
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield name, value
            elif isinstance(value, Module):
                for sub_name, p in value.named_parameters():
                    if id(p) not in seen:
                        seen.add(id(p))
                        yield f"{name}.{sub_name}", p
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        for sub_name, p in item.named_parameters():
                            if id(p) not in seen:
                                seen.add(id(p))
                                yield f"{name}.{i}.{sub_name}", p
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield f"{name}[{key}]", item
                    elif isinstance(item, Module):
                        for sub_name, p in item.named_parameters():
                            if id(p) not in seen:
                                seen.add(id(p))
                                yield f"{name}[{key}].{sub_name}", p

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameter values from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {value.shape}"
                )
            params[name].data[...] = value
