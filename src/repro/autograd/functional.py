"""Differentiable neural functionals built on :class:`~repro.autograd.tensor.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def _stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """``exp(min(z,0)) / (1 + exp(-|z|))`` — never overflows."""
    return np.exp(np.minimum(z, 0.0)) / (1.0 + np.exp(-np.abs(z)))


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    data = _stable_sigmoid(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data, (x,), backward)


def log_sigmoid(x: Tensor) -> Tensor:
    """``log(sigmoid(x)) = min(x, 0) - log1p(exp(-|x|))`` — stable."""
    z = x.data
    data = np.minimum(z, 0.0) - np.log1p(np.exp(-np.abs(z)))
    sig = _stable_sigmoid(z)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - sig))

    return Tensor._make(data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - data**2))

    return Tensor._make(data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (x.data > 0))

    return Tensor._make(data, (x,), backward)


def leaky_relu(x: Tensor, slope: float = 0.2) -> Tensor:
    data = np.where(x.data > 0, x.data, slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(x.data > 0, 1.0, slope))

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate(data * (grad - dot))

    return Tensor._make(data, (x,), backward)


def embedding(table: Tensor, indices) -> Tensor:
    """Row lookup into an embedding ``table`` with scatter-add gradient."""
    return table.gather_rows(indices)


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot products of two ``(n, d)`` tensors -> ``(n,)``."""
    return (a * b).sum(axis=-1)


def mse_loss(pred: Tensor, target) -> Tensor:
    target = Tensor._lift(target)
    diff = pred - target
    return (diff * diff).mean()


def bpr_loss(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Bayesian Personalised Ranking loss ``-mean log sigma(pos - neg)``.

    The standard pairwise objective of the GNN recommendation baselines
    (NGCF, LightGCN, MB-GMN, ...).
    """
    return -log_sigmoid(pos_scores - neg_scores).mean()


def binary_cross_entropy_with_logits(logits: Tensor, labels) -> Tensor:
    """Stable BCE on raw scores: ``mean(softplus(x) - x * y)``."""
    labels = np.asarray(labels, dtype=np.float64)
    pos = log_sigmoid(logits)
    neg = log_sigmoid(-logits)
    loss = pos * labels + neg * (1.0 - labels)
    return -loss.mean()


def dropout(x: Tensor, p: float, rng=None, training: bool = True) -> Tensor:
    """Inverted dropout: zero each entry with probability ``p`` and scale
    survivors by ``1 / (1 - p)``.  Identity when not training."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must lie in [0, 1), got {p}")
    if not training or p == 0.0:
        return x * 1.0
    from repro.utils.rng import new_rng

    rng = new_rng(rng)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def layer_norm(x: Tensor, eps: float = 1e-5) -> Tensor:
    """Feature-axis layer normalisation (no affine parameters)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / (variance + eps).sqrt()
