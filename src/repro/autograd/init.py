"""Parameter initialisers returning gradient-tracked tensors."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.utils.rng import RngLike, new_rng


def normal_(shape: Sequence[int], std: float = 0.1, rng: RngLike = None) -> Tensor:
    """Gaussian-initialised parameter with standard deviation ``std``."""
    rng = new_rng(rng)
    return Tensor(rng.normal(0.0, std, size=tuple(shape)), requires_grad=True)


def uniform_(shape: Sequence[int], low: float = -0.1, high: float = 0.1, rng: RngLike = None) -> Tensor:
    """Uniformly initialised parameter on ``[low, high)``."""
    rng = new_rng(rng)
    return Tensor(rng.uniform(low, high, size=tuple(shape)), requires_grad=True)


def xavier_uniform(shape: Sequence[int], rng: RngLike = None) -> Tensor:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    rng = new_rng(rng)
    if len(shape) < 2:
        fan_in = fan_out = int(shape[0]) if shape else 1
    else:
        fan_in, fan_out = int(shape[0]), int(shape[1])
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=tuple(shape)), requires_grad=True)


def zeros_(shape: Sequence[int]) -> Tensor:
    """Zero-initialised parameter (biases)."""
    return Tensor(np.zeros(tuple(shape), dtype=np.float64), requires_grad=True)
