"""A reverse-mode automatic differentiation engine over numpy arrays.

This package substitutes for the GPU deep-learning framework the paper's
authors used.  It provides exactly what the sixteen baselines and the
gradient cross-checks need: a :class:`Tensor` with a dynamic tape,
differentiable ops (matmul, elementwise math, reductions, embedding
gather/scatter), neural functionals, parameter modules, initialisers and
SGD/Adam optimisers.
"""

from repro.autograd import functional
from repro.autograd.init import normal_, uniform_, xavier_uniform
from repro.autograd.module import Module, Parameter
from repro.autograd.optim import SGD, Adam, Optimizer
from repro.autograd.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Optimizer",
    "SGD",
    "Adam",
    "normal_",
    "uniform_",
    "xavier_uniform",
]
