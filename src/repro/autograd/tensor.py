"""The :class:`Tensor`: a numpy array with a reverse-mode gradient tape.

Each differentiable operation records its parents and a closure that
accumulates gradients into them; :meth:`Tensor.backward` runs the tape in
reverse topological order.  Broadcasting follows numpy semantics, with
gradients summed back over broadcast axes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference / updates)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


ArrayLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward

    # ------------------------------------------------------------- structure

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tape-free view of the same data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------- tape core

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient needs a scalar, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------- arithmetic ops

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        if a.ndim > 2 or b.ndim > 2:
            raise ValueError(
                f"matmul supports 1-D/2-D operands, got {a.ndim}-D @ {b.ndim}-D"
            )
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if a.ndim == 2 and b.ndim == 2:
                    self._accumulate(grad @ b.T)
                elif a.ndim == 2 and b.ndim == 1:  # (n,k)@(k,) -> (n,)
                    self._accumulate(np.outer(grad, b))
                elif a.ndim == 1 and b.ndim == 2:  # (k,)@(k,m) -> (m,)
                    self._accumulate(b @ grad)
                else:  # (k,)@(k,) -> scalar
                    self._accumulate(grad * b)
            if other.requires_grad:
                if a.ndim == 2 and b.ndim == 2:
                    other._accumulate(a.T @ grad)
                elif a.ndim == 2 and b.ndim == 1:
                    other._accumulate(a.T @ grad)
                elif a.ndim == 1 and b.ndim == 2:
                    other._accumulate(np.outer(a, grad))
                else:
                    other._accumulate(grad * a)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------ reductions

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ----------------------------------------------------------- shape/index

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices) -> "Tensor":
        """Row lookup ``self[indices]`` with scatter-add gradients.

        This is the embedding-table primitive: the forward copies rows,
        the backward adds each output-row gradient back into its source
        row (duplicated indices accumulate).
        """
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------- elementwise fns

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        # Gradient flows to the (first) maximal entries only.
        expanded = (
            out_data
            if keepdims or axis is None
            else np.expand_dims(out_data, axis)
        )
        mask = self.data == expanded

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask / counts)

        return self._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance, differentiable (used by norm layers)."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiable."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)
