"""First-order optimisers over autograd tensors.

The paper trains SUPA with Adam (lr 3e-3, weight decay 1e-4); the
baselines use SGD or Adam depending on their original publications.
Weight decay is applied as decoupled L2 on the raw gradient (classic
Adam-with-L2, matching the common framework default the paper used).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("optimizer received a non-trainable tensor")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            # Parameter updates run strictly after backward() has drained
            # the tape, so the in-place write cannot corrupt saved
            # activations.
            p.data -= self.lr * grad  # reprolint: disable=inplace-mutation


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2 weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 3e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            # Post-backward update, same as SGD above.
            p.data -= self.lr * m_hat / (  # reprolint: disable=inplace-mutation
                np.sqrt(v_hat) + self.eps
            )
