"""reprolint: AST-based static analysis for this reproduction's invariants.

Usage::

    from repro.analysis import run_lint
    result = run_lint(["src/repro"])
    assert result.ok, [v.format() for v in result.violations]

or from a shell: ``python -m repro.lint src/repro`` / ``repro lint``.
See :mod:`repro.analysis.rules` for the rule set and how to add one.
"""

from repro.analysis.core import (
    LintResult,
    Project,
    Rule,
    SourceFile,
    Violation,
    get_rules,
    register_rule,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text, to_dict, write_json
from repro.analysis.sanitizer import (
    Audit,
    LockMonitor,
    SanitizedLock,
    default_audits,
    threadcheck,
)

__all__ = [
    "Audit",
    "LintResult",
    "LockMonitor",
    "Project",
    "Rule",
    "SanitizedLock",
    "SourceFile",
    "Violation",
    "default_audits",
    "get_rules",
    "register_rule",
    "run_lint",
    "render_json",
    "render_text",
    "to_dict",
    "write_json",
]
