"""The reprolint rule set: eight checks for this codebase's real hazards.

Three further concurrency-correctness rules — ``lock-discipline``,
``lock-ordering`` and ``hold-and-call`` — live in
:mod:`repro.analysis.concurrency` (selectable together via
``repro lint --concurrency``); their runtime counterpart is
:mod:`repro.analysis.sanitizer`.

====================  ======================================================
rule id               guards against
====================  ======================================================
rng-discipline        unseedable randomness (``np.random.*`` / stdlib
                      ``random`` outside ``utils/rng.py``)
explicit-dtype        silent float64/float32 drift from dtype-less array
                      constructors in ``core/``, ``autograd/``, ``serve/``
                      and ``resilience/``; ``core/engine/`` additionally
                      pins ``np.asarray`` and ``np.arange`` (plan arrays
                      cross the bitwise-parity gate as raw bytes)
autograd-backward     a differentiable op whose forward is taped via
                      ``Tensor._make`` without a wired ``backward`` closure
inplace-mutation      augmented assignment on a tensor's backing ``.data``
                      array outside ``no_grad()`` — corrupts saved
                      activations; in ``core/engine/`` also any subscript
                      write to an attribute-held array (kernels must
                      return gradients and route memory writes through
                      the optimizer, never scatter into shared state)
baseline-registry     a ``baselines/`` module missing from ``registry.py``
                      or without a ``tests/baselines/test_<module>.py``
                      file
public-api            ``repro.__all__`` names that do not resolve or lack
                      docstrings
metrics-discipline    ad-hoc telemetry: ``print()`` in library code
                      (allowed only in ``cli.py`` and
                      ``analysis/reporters.py``) and raw ``time.time()`` /
                      ``time.perf_counter()`` outside ``utils/timer.py`` /
                      ``obs/`` — timings must flow through the Timer /
                      span / metrics APIs so they land in the shared
                      registry
exception-discipline  error paths that hide failures: bare ``except:``
                      (catches ``KeyboardInterrupt``/``SystemExit``) and
                      handlers that silently swallow — a body with no
                      raise / return / call / assignment / control flow,
                      i.e. nothing that records, translates or reacts to
                      the error
====================  ======================================================

Every rule honours ``# reprolint: disable=<id>`` on the reported line
and ``# reprolint: disable-file=<id>`` anywhere in the reported file.
To add a rule: subclass :class:`~repro.analysis.core.Rule`, set ``id``
and ``description``, implement ``check_file`` and/or ``check_project``,
and decorate with :func:`~repro.analysis.core.register_rule`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Project,
    Rule,
    SourceFile,
    Violation,
    build_parent_map,
    dotted_name,
    register_rule,
)

# ------------------------------------------------------------- rng-discipline


@register_rule
class RngDisciplineRule(Rule):
    """All randomness must flow through ``repro.utils.rng`` generators."""

    id = "rng-discipline"
    description = (
        "no np.random.* calls or stdlib `random` usage outside utils/rng.py; "
        "pass a seeded numpy Generator from repro.utils.rng instead"
    )

    #: the one module allowed to touch the global numpy RNG machinery
    EXEMPT = "utils/rng.py"

    def applies_to(self, sf: SourceFile) -> bool:
        return sf.package_rel != self.EXEMPT

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        stdlib_random_names: Set[str] = set()
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        stdlib_random_names.add(alias.asname or alias.name.split(".")[0])
                        yield self._violation(
                            sf, node, "stdlib `random` imported; use repro.utils.rng"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self._violation(
                        sf, node, "stdlib `random` imported; use repro.utils.rng"
                    )
                elif node.module == "numpy" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "random":
                            yield self._violation(
                                sf,
                                node,
                                "`from numpy import random` defeats seed discipline; "
                                "use repro.utils.rng",
                            )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted.startswith(("np.random.", "numpy.random.")):
                    yield self._violation(
                        sf,
                        node,
                        f"call to {dotted}() bypasses seed discipline; "
                        "take an rng from repro.utils.rng.new_rng/spawn_rngs",
                    )
                else:
                    head = dotted.split(".")[0]
                    if head in stdlib_random_names and "." in dotted:
                        yield self._violation(
                            sf,
                            node,
                            f"call to stdlib {dotted}() is unseeded per-process "
                            "state; use repro.utils.rng",
                        )

    def _violation(self, sf: SourceFile, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=sf.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


# -------------------------------------------------------------- explicit-dtype


@register_rule
class ExplicitDtypeRule(Rule):
    """Hot-path allocations must pin their dtype explicitly."""

    id = "explicit-dtype"
    description = (
        "np.zeros/np.empty/np.ones/np.full in core/, autograd/, serve/, "
        "resilience/ and replicate/ must pass an explicit dtype= so the "
        "analytic-gradient, autograd, serving-snapshot, checkpoint-parity "
        "and replica-fingerprint paths cannot drift between float32 and "
        "float64; core/engine/ and core/shard/ additionally require "
        "dtype= on np.asarray/np.arange because plan and schedule arrays "
        "feed the engines' bitwise-parity contract"
    )

    #: constructor -> index of the positional dtype argument
    CONSTRUCTORS = {"zeros": 1, "ones": 1, "empty": 1, "full": 2}
    #: engine plans are compared as raw bytes across engines, so even
    #: coercions/ranges must pin their dtype (platform default int drift
    #: would silently break the parity gate, not just precision).
    ENGINE_CONSTRUCTORS = {**CONSTRUCTORS, "asarray": 1, "arange": 3}
    SCOPES = ("core/", "autograd/", "serve/", "resilience/", "replicate/", "obs/")
    ENGINE_SCOPE = ("core/engine/", "core/shard/")

    def applies_to(self, sf: SourceFile) -> bool:
        return sf.package_rel.startswith(self.SCOPES)

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        engine = sf.package_rel.startswith(self.ENGINE_SCOPE)
        constructors = self.ENGINE_CONSTRUCTORS if engine else self.CONSTRUCTORS
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            position = constructors.get(parts[1])
            if position is None:
                continue
            if len(node.args) > position:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield Violation(
                path=sf.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=self.id,
                message=f"{dotted}() without an explicit dtype=",
            )


# ----------------------------------------------------------- autograd-backward


@register_rule
class AutogradBackwardRule(Rule):
    """Every taped forward must wire a ``backward`` closure into ``_make``."""

    id = "autograd-backward"
    description = (
        "functions in autograd/tensor.py and autograd/functional.py that build "
        "outputs via Tensor._make must define a local `backward` closure and "
        "pass it to _make"
    )

    SCOPED_FILES = ("autograd/tensor.py", "autograd/functional.py")

    def applies_to(self, sf: SourceFile) -> bool:
        return sf.package_rel in self.SCOPED_FILES

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.FunctionDef) and node.name != "backward":
                yield from self._check_forward(sf, node)

    def _check_forward(
        self, sf: SourceFile, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        make_calls: List[ast.Call] = []
        has_backward_def = False
        for node in self._walk_own_scope(func):
            if isinstance(node, ast.FunctionDef) and node.name == "backward":
                has_backward_def = True
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is not None and dotted.endswith("._make"):
                    make_calls.append(node)
        if not make_calls:
            return
        wired = any(
            isinstance(arg, ast.Name) and arg.id == "backward"
            for call in make_calls
            for arg in list(call.args) + [kw.value for kw in call.keywords]
        )
        if not has_backward_def:
            yield Violation(
                path=sf.rel,
                line=func.lineno,
                col=func.col_offset,
                rule=self.id,
                message=(
                    f"{func.name}() tapes a forward via _make but defines no "
                    "`backward` closure"
                ),
            )
        elif not wired:
            yield Violation(
                path=sf.rel,
                line=func.lineno,
                col=func.col_offset,
                rule=self.id,
                message=(
                    f"{func.name}() defines `backward` but never passes it to "
                    "_make — the gradient is silently dropped"
                ),
            )

    @staticmethod
    def _walk_own_scope(func: ast.FunctionDef) -> Iterator[ast.AST]:
        """Walk ``func`` including nested-def headers but not their bodies
        (except we still note a nested def named ``backward``)."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # closure bodies are a separate scope
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------- inplace-mutation


@register_rule
class InplaceMutationRule(Rule):
    """In-place updates of tensor storage must be fenced off the tape."""

    id = "inplace-mutation"
    description = (
        "augmented assignment targeting a `.data` backing array outside a "
        "`with no_grad():` block mutates values saved by backward closures; "
        "in core/engine/ and core/shard/ any subscript write to an "
        "attribute-held array is also banned — kernels return gradients, "
        "the optimizer owns writes"
    )

    ENGINE_SCOPE = ("core/engine/", "core/shard/")

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        parents = build_parent_map(sf.tree)
        engine = sf.package_rel.startswith(self.ENGINE_SCOPE)
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            targets = [
                element
                for t in targets
                for element in (t.elts if isinstance(t, (ast.Tuple, ast.List)) else (t,))
            ]
            if isinstance(node, ast.AugAssign) and self._targets_data(node.target):
                if self._inside_no_grad(node, parents):
                    continue
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        "augmented assignment mutates a tensor's .data in place; "
                        "wrap in `with no_grad():` or route through the tape"
                    ),
                )
            elif engine and any(self._writes_attribute_array(t) for t in targets):
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        "subscript write to an attribute-held array inside "
                        "core/engine/; kernels must return gradients and route "
                        "memory writes through SparseAdam.update_rows"
                    ),
                )

    @staticmethod
    def _writes_attribute_array(target: ast.AST) -> bool:
        """True for ``obj.attr[...] = ...`` / ``obj.attr[...] += ...``.

        Subscript writes to *local* arrays (``ast.Name`` bases) are the
        engine's bread and butter and stay allowed; only writes that
        reach through an attribute — shared model/memory state — fire.
        """
        if not isinstance(target, ast.Subscript):
            return False
        base = target.value
        while isinstance(base, ast.Subscript):
            base = base.value
        return isinstance(base, ast.Attribute)

    @staticmethod
    def _targets_data(target: ast.AST) -> bool:
        for node in ast.walk(target):
            if isinstance(node, ast.Attribute) and node.attr == "data":
                return True
        return False

    @staticmethod
    def _inside_no_grad(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        dotted = dotted_name(expr.func)
                        if dotted is not None and dotted.split(".")[-1] == "no_grad":
                            return True
            current = parents.get(current)
        return False


# ---------------------------------------------------------- baseline-registry


@register_rule
class BaselineRegistryRule(Rule):
    """Every baseline implementation is registered and has its own tests."""

    id = "baseline-registry"
    description = (
        "each baselines/ module defining a BaselineModel subclass must appear "
        "in registry.py BASELINE_BUILDERS and have tests/baselines/"
        "test_<module>.py"
    )

    BASE_NAMES = ("BaselineModel", "EmbeddingModel")
    #: infrastructure modules that define (rather than implement) the API
    EXEMPT_MODULES = ("base", "registry", "__init__")

    def check_project(self, project: Project) -> Iterator[Violation]:
        registry_sf = project.find("baselines/registry.py")
        if registry_sf is None or registry_sf.tree is None:
            return
        registered_modules = self._registered_modules(registry_sf.tree)
        tests_dir = project.tests_dir() / "baselines"
        for sf in project.files:
            rel = sf.package_rel
            if not rel.startswith("baselines/") or sf.tree is None:
                continue
            stem = Path(rel).stem
            if stem in self.EXEMPT_MODULES:
                continue
            baseline_class = self._baseline_class(sf.tree)
            if baseline_class is None:
                continue
            if stem not in registered_modules:
                yield Violation(
                    path=sf.rel,
                    line=baseline_class.lineno,
                    col=baseline_class.col_offset,
                    rule=self.id,
                    message=(
                        f"baseline class {baseline_class.name} in {stem}.py is "
                        "not registered in baselines/registry.py "
                        "BASELINE_BUILDERS"
                    ),
                )
            test_file = tests_dir / f"test_{stem}.py"
            if not test_file.exists():
                yield Violation(
                    path=sf.rel,
                    line=baseline_class.lineno,
                    col=baseline_class.col_offset,
                    rule=self.id,
                    message=(
                        f"baseline module {stem}.py has no matching test file "
                        f"tests/baselines/test_{stem}.py"
                    ),
                )

    def _baseline_class(self, tree: ast.Module) -> Optional[ast.ClassDef]:
        """The first top-level class subclassing the baseline API, if any."""
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                name = dotted_name(base)
                if name is not None and name.split(".")[-1] in self.BASE_NAMES:
                    return node
        return None

    def _registered_modules(self, tree: ast.Module) -> Set[str]:
        """Module stems whose classes appear as BASELINE_BUILDERS values."""
        name_to_module: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    name_to_module[alias.asname or alias.name] = node.module
        registered: Set[str] = set()
        for node in ast.walk(tree):
            target_names = []
            if isinstance(node, ast.Assign):
                target_names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target_names = [node.target.id]
                value = node.value
            else:
                continue
            if "BASELINE_BUILDERS" not in target_names:
                continue
            if isinstance(value, ast.Dict):
                for v in value.values:
                    if isinstance(v, ast.Name) and v.id in name_to_module:
                        registered.add(name_to_module[v.id].split(".")[-1])
        return registered


# --------------------------------------------------------- metrics-discipline


@register_rule
class MetricsDisciplineRule(Rule):
    """Telemetry flows through the obs APIs, not prints and raw clocks."""

    id = "metrics-discipline"
    description = (
        "no print() in library code (only cli.py and analysis/reporters.py "
        "may print) and no raw time.time()/time.perf_counter() outside "
        "utils/timer.py and obs/ — report through Timer, tracer spans and "
        "the shared MetricsRegistry instead"
    )

    #: the only modules that own stdout
    PRINT_EXEMPT = ("cli.py", "analysis/reporters.py")
    #: the clock primitives wrapped by Timer / tracer spans
    CLOCK_CALLS = (
        "time.time",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
    )
    #: the modules allowed to touch the clock primitives directly
    CLOCK_EXEMPT_FILES = ("utils/timer.py",)
    CLOCK_EXEMPT_PREFIXES = ("obs/",)

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        rel = sf.package_rel
        check_print = rel not in self.PRINT_EXEMPT
        check_clock = rel not in self.CLOCK_EXEMPT_FILES and not rel.startswith(
            self.CLOCK_EXEMPT_PREFIXES
        )
        if not (check_print or check_clock):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if check_print and dotted == "print":
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        "print() in library code; emit through "
                        "analysis/reporters.py helpers or return data for "
                        "cli.py to render"
                    ),
                )
            elif check_clock and dotted in self.CLOCK_CALLS:
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"raw {dotted}() call; time through "
                        "repro.utils.timer.Timer or a repro.obs tracer span "
                        "so the measurement reaches the shared telemetry"
                    ),
                )


# ----------------------------------------------------------------- public-api


@register_rule
class PublicApiRule(Rule):
    """``repro.__all__`` must stay importable and documented."""

    id = "public-api"
    description = (
        "every name in repro/__init__.py __all__ must resolve to a definition "
        "in the source tree, and resolved classes/functions must carry "
        "docstrings"
    )

    MAX_DEPTH = 10

    def check_project(self, project: Project) -> Iterator[Violation]:
        init_sf = self._package_init(project)
        if init_sf is None or init_sf.tree is None:
            return
        package_dir = init_sf.path.resolve().parent
        exported = self._exported_names(init_sf.tree)
        for name, line in exported:
            problem = self._resolve(
                name, init_sf.tree, package_dir, package_dir, depth=0
            )
            if problem is not None:
                yield Violation(
                    path=init_sf.rel,
                    line=line,
                    col=0,
                    rule=self.id,
                    message=f"__all__ entry {name!r} {problem}",
                )

    def _package_init(self, project: Project) -> Optional[SourceFile]:
        for sf in project.files:
            if sf.package_rel == "__init__.py" and sf.path.parent.name == "repro":
                return sf
        return None

    def _exported_names(self, tree: ast.Module) -> List[Tuple[str, int]]:
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    return [
                        (elt.value, elt.lineno)
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
        return []

    def _resolve(
        self,
        name: str,
        tree: ast.Module,
        top_dir: Path,
        module_dir: Path,
        depth: int,
    ) -> Optional[str]:
        """None when ``name`` resolves cleanly, else a problem description.

        ``top_dir`` is the root ``repro`` package directory (anchor for
        absolute imports); ``module_dir`` is the directory of the module
        currently being inspected (anchor for relative imports).
        """
        if depth > self.MAX_DEPTH:
            return "exceeds re-export resolution depth"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name == name:
                    if not ast.get_docstring(node):
                        kind = "class" if isinstance(node, ast.ClassDef) else "function"
                        return f"resolves to an undocumented {kind} ({node.name})"
                    return None
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == name:
                        return None  # a plain value; no docstring possible
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    return None
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if (alias.asname or alias.name) == name:
                        if alias.name == "*":
                            continue
                        source = self._module_source(node, top_dir, module_dir)
                        if source is None:
                            return (
                                f"is re-exported from unresolvable module "
                                f"{node.module!r}"
                            )
                        sub_tree, sub_dir = source
                        return self._resolve(
                            alias.name, sub_tree, top_dir, sub_dir, depth + 1
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if (alias.asname or alias.name.split(".")[0]) == name:
                        return None
        return "does not resolve to any definition"

    def _module_source(
        self, node: ast.ImportFrom, top_dir: Path, module_dir: Path
    ) -> Optional[Tuple[ast.Module, Path]]:
        """Parse the module an ImportFrom pulls from, rooted at the package."""
        module = node.module or ""
        if node.level > 0:
            base = module_dir
            for _ in range(node.level - 1):
                base = base.parent
            parts = module.split(".") if module else []
        else:
            parts = module.split(".")
            if not parts or parts[0] != top_dir.name:
                return None  # external dependency (numpy, scipy, ...)
            base = top_dir
            parts = parts[1:]
        target = base.joinpath(*parts) if parts else base
        for candidate, owner in (
            (target / "__init__.py", target),
            (target.with_suffix(".py"), target.parent),
        ):
            if candidate.exists():
                try:
                    tree = ast.parse(
                        candidate.read_text(encoding="utf-8"),
                        filename=str(candidate),
                    )
                except SyntaxError:
                    return None
                return tree, owner
        return None


# --------------------------------------------------------- exception-discipline


@register_rule
class ExceptionDisciplineRule(Rule):
    """Error paths must surface, translate or record — never vanish."""

    id = "exception-discipline"
    description = (
        "no bare `except:` (it catches KeyboardInterrupt/SystemExit) and no "
        "silently-swallowing handlers: an except body must raise, return, "
        "call something (log/metric/cleanup), assign state or branch control "
        "flow — a body of pass/constants makes failures undiagnosable, which "
        "the resilience layer's recovery guarantees cannot survive"
    )

    #: statement types that count as *reacting* to the caught exception
    HANDLED_STATEMENTS = (
        ast.Raise,
        ast.Return,
        ast.Break,
        ast.Continue,
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
        ast.Delete,
        ast.Assert,
    )
    #: expression types that count when they appear anywhere in the body
    HANDLED_EXPRESSIONS = (ast.Call, ast.Yield, ast.YieldFrom, ast.Await)

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        "bare `except:` catches KeyboardInterrupt and "
                        "SystemExit; name the exception types (use "
                        "`except Exception` at the very least)"
                    ),
                )
            if not self._handles(node):
                yield Violation(
                    path=sf.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        "exception silently swallowed: the handler body "
                        "neither raises, returns, records (call/assignment) "
                        "nor redirects control flow"
                    ),
                )

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, self.HANDLED_STATEMENTS) or isinstance(
                node, self.HANDLED_EXPRESSIONS
            ):
                return True
        return False
