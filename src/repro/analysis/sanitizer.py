"""Runtime lock sanitizer: order-inversion and unguarded-write detection.

The static rules in :mod:`repro.analysis.concurrency` stop at the class
boundary; this module watches the *running* system.  Inside a
:func:`threadcheck` block every audited class (the serving queue, the
embedding store, the top-K index, the metrics primitives, the service
itself and the WAL/checkpoint writers) is patched so that:

* its lock is wrapped in a :class:`SanitizedLock` which records, per
  thread, the stack of locks currently held.  Acquiring lock *B* while
  holding lock *A* registers the order edge ``A -> B``; a later
  acquisition of *A* while holding *B* — on any thread, any instance —
  is a **lock-order inversion** (the classic ABBA deadlock seed) and is
  reported with both acquisition sites;
* writes to the attributes its lock guards (declared per class in
  :data:`DEFAULT_AUDITS`, cross-checked against the static inference in
  the test suite) are verified to happen while the lock is held —
  anything else is an **unguarded write** report.

Monitoring is pure recording: no RNG is drawn, no float is touched, no
exception is raised into the audited code path, so a run under
``threadcheck()`` stays bitwise identical to an unsanitized run (the
chaos-replay gate asserts this).  Reports serialise to JSON for the
``benchmarks/results`` convention.

Order edges are keyed by ``ClassName.lock_attr`` — rank, not instance —
which makes the checker enforce the lock *hierarchy* documented in
DESIGN.md §12 (queue -> service state -> store -> index -> metrics):
two instances of the same rank never nest in this codebase, and a
violation between ranks is a design break even when the particular
interleaving did not deadlock this time.
"""

from __future__ import annotations

import json
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())

#: attribute flag set on instances while their ``__init__`` runs —
#: construction happens-before publication to other threads, so writes
#: during it are exempt from the guarded-write check
_IN_INIT_FLAG = "_threadcheck_in_init"


@dataclass(frozen=True)
class Audit:
    """One class under runtime audit: its lock and what the lock guards."""

    cls: type
    lock_attr: str
    guarded: FrozenSet[str]

    @property
    def lock_name(self) -> str:
        return f"{self.cls.__name__}.{self.lock_attr}"


def _site(skip: int = 3, depth: int = 4) -> List[str]:
    """A short ``file:line in func`` stack slice at the event site."""
    frames = traceback.extract_stack()[: -skip][-depth:]
    return [f"{f.filename}:{f.lineno} in {f.name}" for f in frames]


class SanitizedLock:
    """Drop-in wrapper over a ``threading.Lock``/``RLock`` that reports
    every acquisition to a :class:`LockMonitor`.

    Delegates blocking semantics entirely to the wrapped lock — the
    wrapper adds bookkeeping, never synchronisation of its own, so the
    audited program's interleavings (and results) are unchanged.
    """

    def __init__(self, monitor: "LockMonitor", name: str, inner) -> None:
        self._monitor = monitor
        self.name = name
        self._inner = inner
        self.reentrant = isinstance(inner, _RLOCK_TYPE)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.after_acquire(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor.after_release(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return self._monitor.holds(self)


class LockMonitor:
    """Collects acquisition order, inversions and unguarded writes.

    One monitor lives per :func:`threadcheck` block.  Thread-local
    state tracks the per-thread held stack; the shared order graph and
    report lists are guarded by the monitor's own lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        #: first-seen site per order edge ``(outer, inner)``
        self._order: Dict[Tuple[str, str], List[str]] = {}
        self.acquisitions: Dict[str, int] = {}
        self.inversions: List[Dict[str, object]] = []
        self.unguarded_writes: List[Dict[str, object]] = []

    # ------------------------------------------------------------ held stacks

    def _stack(self) -> List[Tuple[int, str, int]]:
        """This thread's held stack: ``(lock id, rank name, depth)``."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def holds(self, lock: SanitizedLock) -> bool:
        return any(entry[0] == id(lock) for entry in self._stack())

    def held_names(self) -> List[str]:
        """Rank names of the locks this thread currently holds."""
        return [entry[1] for entry in self._stack()]

    # ----------------------------------------------------------- acquisition

    def before_acquire(self, lock: SanitizedLock) -> None:
        stack = self._stack()
        if any(entry[0] == id(lock) for entry in stack):
            if lock.reentrant:
                return  # same-instance reentry: RLock's contract
            self._record_inversion(
                lock.name,
                [lock.name],
                kind="self-deadlock",
                prior_site=None,
            )
            return
        outer_names = {entry[1] for entry in stack if entry[0] != id(lock)}
        with self._lock:
            for outer in outer_names:
                if outer == lock.name:
                    continue  # same rank, different instance: not ordered
                edge = (outer, lock.name)
                inverse = self._order.get((lock.name, outer))
                if inverse is not None and edge not in self._order:
                    self._record_inversion_locked(
                        lock.name,
                        sorted(outer_names),
                        kind="order-inversion",
                        prior_site=inverse,
                    )
                self._order.setdefault(edge, _site())

    def after_acquire(self, lock: SanitizedLock) -> None:
        stack = self._stack()
        for entry in stack:
            if entry[0] == id(lock):
                stack[stack.index(entry)] = (entry[0], entry[1], entry[2] + 1)
                return
        stack.append((id(lock), lock.name, 1))
        with self._lock:
            self.acquisitions[lock.name] = self.acquisitions.get(lock.name, 0) + 1

    def after_release(self, lock: SanitizedLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == id(lock):
                lock_id, name, depth = stack[i]
                if depth > 1:
                    stack[i] = (lock_id, name, depth - 1)
                else:
                    del stack[i]
                return

    def _record_inversion(self, acquiring, holding, kind, prior_site) -> None:
        with self._lock:
            self._record_inversion_locked(acquiring, holding, kind, prior_site)

    def _record_inversion_locked(self, acquiring, holding, kind, prior_site) -> None:
        self.inversions.append(
            {
                "kind": kind,
                "thread": threading.current_thread().name,
                "acquiring": acquiring,
                "holding": list(holding),
                "site": _site(skip=5),
                "prior_site": prior_site,
            }
        )

    # -------------------------------------------------------- guarded writes

    def record_unguarded_write(self, cls_name: str, attr: str) -> None:
        with self._lock:
            self.unguarded_writes.append(
                {
                    "class": cls_name,
                    "attr": attr,
                    "thread": threading.current_thread().name,
                    "site": _site(skip=4),
                }
            )

    # -------------------------------------------------------------- reporting

    @property
    def ok(self) -> bool:
        with self._lock:
            return not self.inversions and not self.unguarded_writes

    def order_edges(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._order)

    def report(self) -> Dict[str, object]:
        """A JSON-serialisable summary of everything observed."""
        with self._lock:
            return {
                "ok": not self.inversions and not self.unguarded_writes,
                "acquisitions": dict(sorted(self.acquisitions.items())),
                "order_edges": [list(edge) for edge in sorted(self._order)],
                "inversions": list(self.inversions),
                "unguarded_writes": list(self.unguarded_writes),
            }

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` with the full report unless clean."""
        if not self.ok:
            raise AssertionError(
                "threadcheck found concurrency violations:\n"
                + json.dumps(self.report(), indent=2, sort_keys=True)
            )


def default_audits() -> List[Audit]:
    """The audited classes: every lock owner in serve/obs/resilience.

    Imports live here (not module top) so ``repro.analysis`` stays
    importable without dragging in numpy-heavy serving modules.  The
    guarded sets mirror what the static ``lock-discipline`` rule infers
    from the source — ``tests/analysis/test_sanitizer.py`` cross-checks
    the two so they cannot drift apart.
    """
    from repro.core.shard.executor import ShardedEngine
    from repro.obs.hdr import HdrHistogram
    from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from repro.obs.quality import StreamingQualityEvaluator
    from repro.obs.slo import SLOMonitor
    from repro.replicate.follower import ReplicationFollower
    from repro.resilience.checkpoint import CheckpointManager
    from repro.resilience.wal import WalTailer, WriteAheadLog
    from repro.serve.admission import AdmissionController
    from repro.serve.dispatch import DispatchWorker
    from repro.serve.index import TopKIndex
    from repro.serve.ingest import EventQueue
    from repro.serve.service import RecommendationService
    from repro.serve.store import (
        DecayedEmbeddingStore,
        DecayedSnapshot,
        VersionedEmbeddingStore,
    )

    def audit(cls, lock_attr, guarded):
        return Audit(cls, lock_attr, frozenset(guarded))

    return [
        audit(
            EventQueue,
            "_lock",
            {
                "_buffer", "_paused", "deadletters", "reason_counts",
                "max_timestamp", "accepted", "rejected", "dropped",
                "shed", "batches_dispatched",
            },
        ),
        audit(
            AdmissionController,
            "_lock",
            {
                "_buckets", "_state", "_offered", "admitted", "throttled",
                "shed", "escalations", "de_escalations",
            },
        ),
        audit(
            DispatchWorker,
            "_lock",
            {"_thread", "_closing", "batches", "events", "errors"},
        ),
        audit(
            VersionedEmbeddingStore,
            "_lock",
            {"_current", "compactions", "_publishes_since_compact"},
        ),
        audit(DecayedEmbeddingStore, "_lock", {"_current"}),
        audit(DecayedSnapshot, "_lock", {"_cache"}),
        audit(ShardedEngine, "_pool_lock", {"_pool"}),
        audit(
            TopKIndex,
            "_lock",
            {
                "_cache", "_cache_bytes", "hits", "misses",
                "invalidations", "evictions", "warmed",
            },
        ),
        audit(Counter, "_lock", {"value"}),
        audit(Gauge, "_lock", {"value"}),
        audit(
            Histogram,
            "_lock",
            {"count", "sum", "sum_sq", "max_value", "_samples"},
        ),
        audit(
            HdrHistogram,
            "_lock",
            {"_counts", "count", "sum", "min_observed", "max_observed"},
        ),
        # _states mutations route through a local alias of the per-SLO
        # state object, which is exactly what the static rule sees too.
        audit(SLOMonitor, "_lock", {"_alerts"}),
        audit(
            StreamingQualityEvaluator,
            "_lock",
            {
                "_seen", "_window_hits", "_window_rr", "_evaluated", "_hits",
                "_rr_sum", "_records", "_cohort_evaluated", "_cohort_hits",
                "_baseline", "_last_version",
            },
        ),
        audit(MetricsRegistry, "_lock", {"_instruments"}),
        audit(
            RecommendationService,
            "_state_lock",
            {
                "_clock", "_update_in_flight", "_updates_applied",
                "_resilience_suspended", "_consecutive_update_failures",
                "_breaker_open", "_breaker_cooldown", "_read_only",
                "_user_activity", "_shard_pool",
            },
        ),
        audit(
            WriteAheadLog,
            "_lock",
            {"last_seq", "_fh", "_active_path", "_active_bytes"},
        ),
        audit(CheckpointManager, "_lock", {"writes", "fallbacks"}),
        audit(
            WalTailer,
            "_lock",
            {
                "_segment", "_offset", "_next_seq", "_bytes_read",
                "_records_read", "_backlog_bytes",
            },
        ),
        audit(
            ReplicationFollower,
            "_lock",
            {
                "_fifo", "_accepted_total", "_watermark", "_state",
                "_last_seq_applied", "_last_hb_primary_t", "_last_hb_seen_at",
                "_heartbeats_seen", "_lag_records",
            },
        ),
    ]


def _patch_class(cls: type, audit: Audit, monitor: LockMonitor):
    """Wrap ``cls.__init__``/``__setattr__`` for the audit; returns undo."""
    orig_init = cls.__dict__.get("__init__")
    orig_setattr = cls.__dict__.get("__setattr__")
    base_init = cls.__init__
    base_setattr = cls.__setattr__
    guarded = audit.guarded
    lock_attr = audit.lock_attr
    lock_name = audit.lock_name
    cls_name = cls.__name__

    def patched_init(self, *args, **kwargs):
        object.__setattr__(self, _IN_INIT_FLAG, True)
        try:
            base_init(self, *args, **kwargs)
        finally:
            inner = self.__dict__.get(lock_attr)
            if isinstance(inner, (_LOCK_TYPE, _RLOCK_TYPE)):
                self.__dict__[lock_attr] = SanitizedLock(
                    monitor, lock_name, inner
                )
            object.__setattr__(self, _IN_INIT_FLAG, False)

    def patched_setattr(self, name, value):
        if name in guarded and not getattr(self, _IN_INIT_FLAG, False):
            lock = self.__dict__.get(lock_attr)
            if isinstance(lock, SanitizedLock) and not lock.held_by_current_thread():
                monitor.record_unguarded_write(cls_name, name)
        base_setattr(self, name, value)

    cls.__init__ = patched_init
    cls.__setattr__ = patched_setattr

    def undo():
        if orig_init is not None:
            cls.__init__ = orig_init
        else:  # inherited __init__: drop our override entirely
            del cls.__init__
        if orig_setattr is not None:
            cls.__setattr__ = orig_setattr
        else:
            del cls.__setattr__

    return undo


@contextmanager
def threadcheck(
    audits: Optional[Sequence[Audit]] = None,
    report_path: Optional[str] = None,
) -> Iterator[LockMonitor]:
    """Audit every lock acquisition and guarded write within the block.

    Instances *constructed inside the block* of the audited classes get
    their locks wrapped; pre-existing instances are untouched.  Usage::

        with threadcheck() as monitor:
            ...  # exercise the threaded system
        monitor.assert_clean()

    ``audits`` overrides the audited class set (see :class:`Audit`);
    ``report_path`` writes the JSON report on exit, clean or not.
    Patching is restored exactly on exit, even on error.  Blocks must
    not be nested over the same classes.
    """
    monitor = LockMonitor()
    undos = [
        _patch_class(audit.cls, audit, monitor)
        for audit in (default_audits() if audits is None else audits)
    ]
    try:
        yield monitor
    finally:
        for undo in reversed(undos):
            undo()
        if report_path is not None:
            monitor.write_json(report_path)
