"""Concurrency-correctness rules: lock discipline, ordering, hold-and-call.

Three rules grow reprolint from style/contract checks into a static
concurrency suite over the threaded subsystems (``serve/``, ``obs/``,
``resilience/``):

* **lock-discipline** — for every class that creates a
  ``threading.Lock`` / ``RLock`` / ``Condition`` in ``__init__``, infer
  the *guarded attribute set* (attributes written inside ``with
  self._lock:`` blocks anywhere in the class) and flag reads or writes
  of those attributes outside the lock in other methods.  Private
  helpers whose every intra-class call site holds the lock *inherit*
  that lock (the caller-must-hold pattern), so ``_dispatch_ready`` style
  internals need no annotations.
* **lock-ordering** — build the intra-class lock-acquisition graph
  (nested ``with`` blocks, followed through intra-class call edges) and
  report cycles as potential deadlocks.  Re-acquiring a non-reentrant
  ``Lock`` on any intra-class path is a definite deadlock and is always
  reported.  An ``RLock`` asks for trouble only when its reentrancy is
  undocumented: the creation line must carry a ``# reentrant: <chain>``
  comment naming the re-entrant call path, which is the code-level
  invariant this rule (and readers) can check.
* **hold-and-call** — flag work that must never run under a lock:
  ``time.sleep``, ``open()``, ``os``/``shutil``/``subprocess``/``socket``
  calls, and calls through *injected callables* (attributes assigned
  from an ``__init__`` parameter, e.g. user validators/handlers).
  Intentional cases — the queue's dispatch-under-lock contract — are
  suppressed inline with the invariant spelled out next to the call.

Scope and limits: the analysis is per class, per module.  It does not
follow calls across object boundaries (``self.store.publish()`` from
inside the service), so cross-class lock ordering is enforced at
runtime by :mod:`repro.analysis.sanitizer` instead; the two halves share
one lock-hierarchy contract (DESIGN.md §12).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Rule,
    SourceFile,
    Violation,
    dotted_name,
    register_rule,
)

#: callables whose result counts as creating a lock when assigned to
#: ``self.<attr>`` inside ``__init__`` (matched on the last path item so
#: ``threading.Lock``, ``Lock`` and ``mp.Lock`` all register)
LOCK_FACTORIES = ("Lock", "RLock", "Condition")

#: method names that mutate their receiver in place; a call like
#: ``self._buffer.append(...)`` counts as a *write* of ``self._buffer``
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "add", "discard", "update", "setdefault", "move_to_end",
        "appendleft", "popleft", "sort", "reverse",
    }
)

#: dotted-call prefixes that mean blocking I/O / process work
_IO_PREFIXES = ("os.", "shutil.", "subprocess.", "socket.", "requests.", "urllib.")
#: ``os.path`` is pure string manipulation, not I/O
_IO_EXEMPT_PREFIXES = ("os.path.", "os.environ",)

#: marker comment a reentrant lock's creation line must carry
REENTRANT_MARKER = "# reentrant:"


@dataclass(frozen=True)
class _LockInfo:
    """One lock attribute created in ``__init__``."""

    attr: str
    kind: str  # "Lock" | "RLock" | "Condition"
    lineno: int
    col: int


@dataclass(frozen=True)
class _Access:
    """One read/write of ``self.<attr>`` with the locks held around it."""

    method: str
    attr: str
    lineno: int
    col: int
    is_write: bool
    held: FrozenSet[str]


@dataclass(frozen=True)
class _Acquisition:
    """One ``with self.<lock>:`` entry with the locks already held."""

    method: str
    lock: str
    lineno: int
    col: int
    held: FrozenSet[str]


@dataclass(frozen=True)
class _SelfCall:
    """An intra-class call ``self.<method>(...)`` with the locks held."""

    method: str
    callee: str
    lineno: int
    col: int
    held: FrozenSet[str]


@dataclass(frozen=True)
class _RiskyCall:
    """A blocking / injected-callable call with the locks held."""

    method: str
    desc: str
    lineno: int
    col: int
    held: FrozenSet[str]


@dataclass
class _ClassModel:
    """Everything the three rules need to know about one class."""

    name: str
    lineno: int
    locks: Dict[str, _LockInfo] = field(default_factory=dict)
    methods: Set[str] = field(default_factory=set)
    callback_attrs: Set[str] = field(default_factory=set)
    accesses: List[_Access] = field(default_factory=list)
    acquisitions: List[_Acquisition] = field(default_factory=list)
    self_calls: List[_SelfCall] = field(default_factory=list)
    risky_calls: List[_RiskyCall] = field(default_factory=list)
    #: locks a private helper inherits because every call site holds them
    inherited: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def effective_held(self, method: str, held: FrozenSet[str]) -> FrozenSet[str]:
        return held | self.inherited.get(method, frozenset())


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_factory_call(node: ast.AST) -> Optional[str]:
    """The lock kind when ``node`` is ``threading.Lock()``-like, else None."""
    if not isinstance(node, ast.Call):
        return None
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    return last if last in LOCK_FACTORIES else None


class _MethodWalker(ast.NodeVisitor):
    """One pass over a method body tracking the held-lock stack.

    ``with self.<lock>:`` pushes; leaving the block pops.  Everything
    interesting (attribute accesses, intra-class calls, acquisitions,
    risky calls) is recorded together with the locks held at that point.
    Nested functions inherit the enclosing held set — conservative for
    closures that escape, exact for the immediate-call idiom.
    """

    def __init__(self, model: _ClassModel, method: str):
        self.model = model
        self.method = method
        self._held: List[str] = []
        #: attribute nodes already recorded as writes (skip as reads)
        self._consumed: Set[int] = set()

    # ------------------------------------------------------------- held stack

    def _held_set(self) -> FrozenSet[str]:
        return frozenset(self._held)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.model.locks:
                self.model.acquisitions.append(
                    _Acquisition(
                        self.method,
                        attr,
                        item.context_expr.lineno,
                        item.context_expr.col_offset,
                        self._held_set(),
                    )
                )
                acquired.append(attr)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self._held[-len(acquired):]

    # -------------------------------------------------------------- mutations

    def _record_access(self, attr: str, node: ast.AST, is_write: bool) -> None:
        if attr in self.model.locks or attr in self.model.methods:
            return
        self.model.accesses.append(
            _Access(
                self.method,
                attr,
                node.lineno,
                node.col_offset,
                is_write,
                self._held_set(),
            )
        )

    def _record_write_target(self, target: ast.AST) -> None:
        """Peel subscripts/tuples so ``self.buf[i] = v`` writes ``buf``."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt)
            return
        base = target
        while isinstance(base, ast.Subscript):
            self.visit(base.slice)
            base = base.value
        attr = _self_attr(base)
        if attr is not None:
            self._record_access(attr, base, is_write=True)
            self._consumed.add(id(base))
        else:
            self.visit(base)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_write_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write_target(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) in self._consumed:
            return
        attr = _self_attr(node)
        if attr is not None:
            self._record_access(
                attr, node, is_write=isinstance(node.ctx, (ast.Store, ast.Del))
            )
            return
        self.generic_visit(node)

    # ------------------------------------------------------------------ calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            receiver = _self_attr(func.value)
            if receiver is not None:
                # ``self._buffer.append(...)`` mutates ``self._buffer``
                self._record_access(receiver, func.value, is_write=True)
                self._consumed.add(id(func.value))
        attr = _self_attr(func)
        if attr is not None:
            if attr in self.model.methods:
                self.model.self_calls.append(
                    _SelfCall(
                        self.method,
                        attr,
                        node.lineno,
                        node.col_offset,
                        self._held_set(),
                    )
                )
            elif attr in self.model.callback_attrs:
                self.model.risky_calls.append(
                    _RiskyCall(
                        self.method,
                        f"call through injected callable `self.{attr}`",
                        node.lineno,
                        node.col_offset,
                        self._held_set(),
                    )
                )
            self._consumed.add(id(func))
        else:
            desc = self._blocking_desc(func)
            if desc is not None:
                self.model.risky_calls.append(
                    _RiskyCall(
                        self.method,
                        desc,
                        node.lineno,
                        node.col_offset,
                        self._held_set(),
                    )
                )
        self.generic_visit(node)

    @staticmethod
    def _blocking_desc(func: ast.AST) -> Optional[str]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        if dotted == "time.sleep":
            return "`time.sleep`"
        if dotted == "open":
            return "`open()`"
        if dotted.startswith(_IO_EXEMPT_PREFIXES):
            return None
        if dotted.startswith(_IO_PREFIXES):
            return f"I/O call `{dotted}`"
        return None


def _init_param_names(init: ast.FunctionDef) -> Set[str]:
    args = init.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    for star in (args.vararg, args.kwarg):
        if star is not None:
            names.add(star.arg)
    names.discard("self")
    return names


def _analyze_class(node: ast.ClassDef) -> Optional[_ClassModel]:
    """Build the class model; None when the class creates no locks."""
    model = _ClassModel(name=node.name, lineno=node.lineno)
    init: Optional[ast.FunctionDef] = None
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods.add(stmt.name)
            if stmt.name == "__init__":
                init = stmt
    if init is None:
        return None
    params = _init_param_names(init)
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            kind = _is_lock_factory_call(stmt.value)
            if kind is not None:
                model.locks[attr] = _LockInfo(
                    attr, kind, stmt.value.lineno, stmt.value.col_offset
                )
            elif any(
                isinstance(n, ast.Name) and n.id in params
                for n in ast.walk(stmt.value)
            ):
                model.callback_attrs.add(attr)
    if not model.locks:
        return None

    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name == "__init__":
            continue  # construction happens-before publication to threads
        walker = _MethodWalker(model, stmt.name)
        for sub in stmt.body:
            walker.visit(sub)

    _solve_inherited(model)
    return model


def _solve_inherited(model: _ClassModel) -> None:
    """Fixpoint: private helpers whose every call site holds lock L hold L.

    ``inherited[m]`` is the intersection over all intra-class call sites
    of (locks held at the call ∪ locks the caller itself inherited).  A
    public method or a helper with no call sites inherits nothing — it
    must take its locks explicitly.
    """
    sites: Dict[str, List[_SelfCall]] = {}
    for call in model.self_calls:
        sites.setdefault(call.callee, []).append(call)
    eligible = {
        m
        for m in model.methods
        if m.startswith("_") and not m.startswith("__") and m in sites
    }
    inherited: Dict[str, FrozenSet[str]] = {m: frozenset() for m in model.methods}
    for _ in range(len(model.methods) + 1):
        changed = False
        for m in eligible:
            candidate: Optional[FrozenSet[str]] = None
            for call in sites[m]:
                at_site = call.held | inherited.get(call.method, frozenset())
                candidate = at_site if candidate is None else candidate & at_site
            candidate = (candidate or frozenset()) & frozenset(model.locks)
            if candidate != inherited[m]:
                inherited[m] = candidate
                changed = True
        if not changed:
            break
    model.inherited = inherited


def _analyze_module(sf: SourceFile) -> List[_ClassModel]:
    models = []
    for node in sf.tree.body:
        if isinstance(node, ast.ClassDef):
            model = _analyze_class(node)
            if model is not None:
                models.append(model)
    return models


@register_rule
class LockDisciplineRule(Rule):
    """Guarded attributes must only be touched under their lock."""

    id = "lock-discipline"
    description = (
        "attributes written under a class's lock are guarded: reads and "
        "writes outside the lock (in any non-__init__ method) are races"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        for model in _analyze_module(sf):
            guarded: Dict[str, Set[str]] = {lock: set() for lock in model.locks}
            for access in model.accesses:
                if not access.is_write:
                    continue
                for lock in model.effective_held(access.method, access.held):
                    if lock in guarded:
                        guarded[lock].add(access.attr)
            for access in model.accesses:
                held = model.effective_held(access.method, access.held)
                for lock, attrs in guarded.items():
                    if access.attr not in attrs or lock in held:
                        continue
                    action = "written" if access.is_write else "read"
                    yield Violation(
                        path=sf.rel,
                        line=access.lineno,
                        col=access.col,
                        rule=self.id,
                        message=(
                            f"{model.name}.{access.method}: `self.{access.attr}` "
                            f"is guarded by `self.{lock}` but {action} without "
                            "holding it"
                        ),
                    )


@register_rule
class LockOrderingRule(Rule):
    """The intra-class lock-acquisition graph must stay acyclic."""

    id = "lock-ordering"
    description = (
        "nested lock acquisitions (direct or through intra-class calls) "
        "must not form cycles; RLocks must document their reentrant path"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        for model in _analyze_module(sf):
            yield from self._check_class(sf, model)

    def _check_class(self, sf: SourceFile, model: _ClassModel) -> Iterator[Violation]:
        # locks each method may end up acquiring, transitively
        acquires: Dict[str, Set[str]] = {m: set() for m in model.methods}
        for acq in model.acquisitions:
            acquires[acq.method].add(acq.lock)
        for _ in range(len(model.methods) + 1):
            changed = False
            for call in model.self_calls:
                before = len(acquires[call.method])
                acquires[call.method] |= acquires.get(call.callee, set())
                changed = changed or len(acquires[call.method]) != before
            if not changed:
                break

        edges: Dict[Tuple[str, str], Tuple[int, int, str]] = {}
        reacquired = set()
        for acq in model.acquisitions:
            for held in model.effective_held(acq.method, acq.held):
                key = (held, acq.lock)
                where = (acq.lineno, acq.col, acq.method)
                if held == acq.lock:
                    reacquired.add((acq.lock, where))
                else:
                    edges.setdefault(key, where)
        for call in model.self_calls:
            for held in model.effective_held(call.method, call.held):
                for lock in acquires.get(call.callee, ()):  # transitive
                    key = (held, lock)
                    where = (call.lineno, call.col, call.method)
                    if held == lock:
                        reacquired.add((lock, where))
                    else:
                        edges.setdefault(key, where)

        for lock, (lineno, col, method) in sorted(reacquired):
            kind = model.locks[lock].kind
            if kind == "RLock":
                continue  # reentrancy is the point; documentation checked below
            yield Violation(
                path=sf.rel,
                line=lineno,
                col=col,
                rule=self.id,
                message=(
                    f"{model.name}.{method}: re-acquires non-reentrant "
                    f"`self.{lock}` while already holding it — guaranteed "
                    "deadlock (use a caller-must-hold helper or an RLock)"
                ),
            )

        adjacency: Dict[str, Set[str]] = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
        reported: Set[FrozenSet[str]] = set()
        for (a, b), (lineno, col, method) in sorted(edges.items()):
            path = self._path(adjacency, b, a)
            if path is None:
                continue
            cycle = frozenset([a, b, *path])
            if cycle in reported:
                continue
            reported.add(cycle)
            chain = " -> ".join([a, b, *path])
            yield Violation(
                path=sf.rel,
                line=lineno,
                col=col,
                rule=self.id,
                message=(
                    f"{model.name}.{method}: lock-ordering cycle "
                    f"{chain} — potential deadlock between threads taking "
                    "these locks in opposite orders"
                ),
            )

        lines = sf.text.splitlines()
        for info in model.locks.values():
            if info.kind != "RLock":
                continue
            if self._has_reentrant_doc(lines, info.lineno):
                continue
            yield Violation(
                path=sf.rel,
                line=info.lineno,
                col=info.col,
                rule=self.id,
                message=(
                    f"{model.name}: RLock `self.{info.attr}` has no "
                    f"documented reentrant path; add `{REENTRANT_MARKER} "
                    "<call chain>` on or above the creation line, or "
                    "demote to Lock"
                ),
            )

    @staticmethod
    def _has_reentrant_doc(lines: List[str], lineno: int) -> bool:
        """True when the creation line, or the contiguous comment block
        directly above it, documents the reentrant call chain."""
        if REENTRANT_MARKER in lines[lineno - 1]:
            return True
        i = lineno - 2
        while i >= 0 and lines[i].lstrip().startswith("#"):
            if REENTRANT_MARKER in lines[i]:
                return True
            i -= 1
        return False

    @staticmethod
    def _path(
        adjacency: Dict[str, Set[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        """DFS path ``start -> ... -> goal`` (goal excluded), else None."""
        stack: List[Tuple[str, List[str]]] = [(start, [])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == goal:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None


@register_rule
class HoldAndCallRule(Rule):
    """No sleeping, I/O, or user callbacks while holding a lock."""

    id = "hold-and-call"
    description = (
        "time.sleep, file/OS I/O and injected callables must not run "
        "while a lock is held — they stall every thread behind the lock"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        for model in _analyze_module(sf):
            for call in model.risky_calls:
                held = model.effective_held(call.method, call.held)
                if not held:
                    continue
                locks = ", ".join(f"`self.{lock}`" for lock in sorted(held))
                yield Violation(
                    path=sf.rel,
                    line=call.lineno,
                    col=call.col,
                    rule=self.id,
                    message=(
                        f"{model.name}.{call.method}: {call.desc} while "
                        f"holding {locks}"
                    ),
                )


#: the rule ids behind ``repro lint --concurrency``
CONCURRENCY_RULES = (
    LockDisciplineRule.id,
    LockOrderingRule.id,
    HoldAndCallRule.id,
)
