"""reprolint core: source model, rule registry, suppressions, driver.

The framework is deliberately small and dependency-free: rules receive
parsed :mod:`ast` trees (never import the code under analysis), report
:class:`Violation` records, and can be silenced per line or per file
with ``# reprolint: disable=<rule>[,<rule>...]`` comments.

Two rule granularities exist:

* **file rules** look at one module at a time (``check_file``);
* **project rules** see the whole linted tree plus the repository
  layout (``check_project``) — e.g. "every baseline module has a
  matching test file".

``run_lint`` is the single entry point used by the CLI, the ``repro
lint`` subcommand, and the tier-1 gate test.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: rule id used for files that cannot be parsed at all
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)="
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A parsed module plus its suppression directives."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.Module]
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)

    @property
    def package_rel(self) -> str:
        """Path relative to the innermost ``repro`` package directory.

        ``.../src/repro/core/model.py`` -> ``core/model.py``; files not
        under a ``repro`` directory keep their project-relative path.
        Rules use this to scope themselves (e.g. dtype hygiene only in
        ``core/`` and ``autograd/``).
        """
        parts = Path(self.rel).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return "/".join(parts[i + 1 :])
        return "/".join(parts)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_suppressions or "all" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line, ())
        return rule_id in rules or "all" in rules


def _parse_suppressions(text: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``# reprolint: disable[-file]=...`` directives.

    Uses the tokenizer so directives inside string literals are ignored;
    on tokenisation failure (syntactically broken file) no suppressions
    are recorded — the parse error is reported anyway.
    """
    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return line_rules, file_rules
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            file_rules.update(rules)
        else:
            line_rules.setdefault(tok.start[0], set()).update(rules)
    return line_rules, file_rules


def load_source_file(path: Path, root: Path) -> SourceFile:
    """Read and parse ``path``; a syntax error leaves ``tree`` as None."""
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        tree = None
    line_rules, file_rules = _parse_suppressions(text)
    return SourceFile(
        path=path,
        rel=rel,
        text=text,
        tree=tree,
        line_suppressions=line_rules,
        file_suppressions=file_rules,
    )


@dataclass
class Project:
    """The linted file set plus enough repository layout for project rules."""

    root: Path
    files: List[SourceFile]

    def find(self, package_rel: str) -> Optional[SourceFile]:
        """The loaded file whose :attr:`SourceFile.package_rel` matches."""
        for sf in self.files:
            if sf.package_rel == package_rel:
                return sf
        return None

    def tests_dir(self) -> Path:
        return self.root / "tests"


class Rule:
    """Base class: subclass, set ``id``/``description``, override a hook."""

    id: str = ""
    description: str = ""

    def applies_to(self, sf: SourceFile) -> bool:
        return True

    def check_file(self, sf: SourceFile) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls):
    """Class decorator adding a rule (by its ``id``) to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has an empty id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def get_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Registered rules, optionally filtered by ``select`` / ``ignore``."""
    # Importing the rule modules populates the registry on first use.
    from repro.analysis import concurrency as _concurrency  # noqa: F401
    from repro.analysis import rules as _rules  # noqa: F401

    known = set(_REGISTRY)
    for name in list(select or []) + list(ignore or []):
        if name not in known:
            raise KeyError(f"unknown rule {name!r}; known: {sorted(known)}")
    chosen = sorted(_REGISTRY.values(), key=lambda r: r.id)
    if select:
        chosen = [r for r in chosen if r.id in set(select)]
    if ignore:
        chosen = [r for r in chosen if r.id not in set(ignore)]
    return chosen


@dataclass
class LintResult:
    """Outcome of one ``run_lint`` invocation."""

    root: Path
    violations: List[Violation]
    files_checked: int
    rules: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.rule] = counts.get(v.rule, 0) + 1
        return dict(sorted(counts.items()))


def discover_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding pyproject.toml/.git."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return current


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``*.py`` files, skipping caches."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for sub in sorted(path.rglob("*.py")):
            parts = sub.parts
            if "__pycache__" in parts or any(p.startswith(".") for p in parts):
                continue
            yield sub


def run_lint(
    paths: Sequence,
    project_root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) with the registered rules.

    Suppressed violations are dropped; files that fail to parse yield a
    single ``parse-error`` violation and are skipped by every rule.
    """
    path_objs = [Path(p) for p in paths]
    if not path_objs:
        raise ValueError("run_lint needs at least one path")
    root = Path(project_root) if project_root else discover_project_root(path_objs[0])
    files: List[SourceFile] = []
    seen: Set[Path] = set()
    for fp in iter_python_files(path_objs):
        resolved = fp.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        files.append(load_source_file(fp, root))

    rules = get_rules(select=select, ignore=ignore)
    project = Project(root=root, files=files)
    violations: List[Violation] = []

    for sf in files:
        if sf.tree is None:
            violations.append(
                Violation(
                    path=sf.rel,
                    line=1,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    message="file could not be parsed as Python",
                )
            )

    by_rel = {sf.rel: sf for sf in files}
    for rule in rules:
        candidates: List[Violation] = []
        for sf in files:
            if sf.tree is None or not rule.applies_to(sf):
                continue
            candidates.extend(rule.check_file(sf))
        candidates.extend(rule.check_project(project))
        for v in candidates:
            sf = by_rel.get(v.path)
            if sf is not None and sf.is_suppressed(v.rule, v.line):
                continue
            violations.append(v)

    return LintResult(
        root=root,
        violations=sorted(violations),
        files_checked=len(files),
        rules=[r.id for r in rules],
    )


# --------------------------------------------------------------------- helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent links for ancestry queries (e.g. no_grad contexts)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
