"""Render :class:`~repro.analysis.core.LintResult` as text or JSON.

The JSON form is stable and machine-readable so benchmark tooling can
track violation counts across PRs (``benchmarks/results/lint_report.json``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.analysis.core import LintResult

#: bumped whenever the JSON layout changes incompatibly
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """``path:line:col: [rule] message`` lines plus a one-line summary."""
    lines = [v.format() for v in result.violations]
    if result.ok:
        lines.append(
            f"reprolint: clean ({result.files_checked} files, "
            f"{len(result.rules)} rules)"
        )
    else:
        counts = ", ".join(
            f"{rule}={n}" for rule, n in result.counts_by_rule().items()
        )
        lines.append(
            f"reprolint: {len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"in {result.files_checked} files ({counts})"
        )
    return "\n".join(lines)


def to_dict(result: LintResult) -> Dict:
    """A JSON-serialisable summary of one lint run.

    ``counts_by_rule`` carries an explicit zero for every rule that ran —
    a clean concurrency pass records ``lock-discipline: 0`` rather than
    omitting the rule, so report consumers can tell "ran clean" from
    "never ran".
    """
    counts = {rule: 0 for rule in result.rules}
    counts.update(result.counts_by_rule())
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "root": str(result.root),
        "files_checked": result.files_checked,
        "rules": list(result.rules),
        "ok": result.ok,
        "total_violations": len(result.violations),
        "counts_by_rule": dict(sorted(counts.items())),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in result.violations
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_dict(result), indent=2, sort_keys=True) + "\n"


def write_json(result: LintResult, path: Union[str, Path]) -> Path:
    """Write the JSON report to ``path``, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_json(result), encoding="utf-8")
    return path


# --------------------------------------------------------------------- output
# The emit helpers below are the lint driver's one sanctioned stdout /
# stderr surface (this module and cli.py are the only places repro code
# may print — enforced by the metrics-discipline rule).


def emit_report(result: LintResult, fmt: str = "text") -> None:
    """Print the rendered report to stdout."""
    print(render_json(result) if fmt == "json" else render_text(result))


def emit_error(message: str) -> None:
    """Print a driver error to stderr."""
    print(f"repro-lint: error: {message}", file=sys.stderr)


def emit_rule_list(rules: Iterable) -> None:
    """Print ``id: description`` for each rule."""
    for rule in rules:
        print(f"{rule.id}: {rule.description}")
