"""reprolint command line: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 on a clean tree, 1 when violations are reported, 2 on
usage errors (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import get_rules, run_lint
from repro.analysis.reporters import (
    emit_error,
    emit_report,
    emit_rule_list,
    write_json,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "reprolint: AST lint + contract checks for numerical, RNG, and "
            "autograd correctness"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write a JSON report to FILE (e.g. "
        "benchmarks/results/lint_report.json)",
    )
    parser.add_argument(
        "--select", nargs="+", metavar="RULE", help="run only these rules"
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run only the concurrency rules (lock-discipline, "
        "lock-ordering, hold-and-call) and record their counts in "
        "benchmarks/results/lint_report.json when that directory exists",
    )
    parser.add_argument(
        "--ignore", nargs="+", metavar="RULE", help="skip these rules"
    )
    parser.add_argument(
        "--project-root",
        metavar="DIR",
        help="repository root (default: walk up to pyproject.toml/.git)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule set and exit"
    )
    return parser


def default_paths() -> List[str]:
    return ["src/repro"] if Path("src/repro").is_dir() else ["."]


def run(
    paths: List[str],
    fmt: str = "text",
    output: Optional[str] = None,
    select: Optional[List[str]] = None,
    ignore: Optional[List[str]] = None,
    project_root: Optional[str] = None,
    concurrency: bool = False,
) -> int:
    """Shared driver behind ``repro-lint`` and the ``repro lint`` subcommand."""
    if concurrency:
        from repro.analysis.concurrency import CONCURRENCY_RULES

        select = list(CONCURRENCY_RULES) + [
            r for r in (select or []) if r not in CONCURRENCY_RULES
        ]
        if output is None:
            # the benchmarks/results convention: track per-rule counts
            # across PRs next to the other reports, when the tree has one
            default_report = Path("benchmarks") / "results" / "lint_report.json"
            if default_report.parent.is_dir():
                output = str(default_report)
    try:
        result = run_lint(
            paths or default_paths(),
            project_root=Path(project_root) if project_root else None,
            select=select,
            ignore=ignore,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        emit_error(str(exc))
        return 2
    if output:
        write_json(result, output)
    emit_report(result, fmt)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        emit_rule_list(get_rules())
        return 0
    return run(
        args.paths,
        fmt=args.format,
        output=args.output,
        select=args.select,
        ignore=args.ignore,
        project_root=args.project_root,
        concurrency=args.concurrency,
    )


if __name__ == "__main__":
    sys.exit(main())
