"""Time-ordered edge streams and the splits the paper's protocols use.

An :class:`EdgeStream` is a chronologically sorted list of
``(u, v, edge_type, t)`` records.  It provides:

* ``chronological_split`` — the 80% / 1% / 19% train/valid/test split of
  Section IV-C,
* ``sequential_batches`` — the ``S_batch``-sized batches InsLearn trains
  on (Algorithm 1, lines 1-2),
* ``split_train_valid`` — the per-batch "last ``S_valid`` edges are
  validation" rule (Algorithm 1, line 5), and
* ``equal_slices`` — the 10 equal parts of the dynamic link-prediction
  protocol (Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.graph.dmhg import DMHG
from repro.graph.schema import GraphSchema


class StreamEdge(NamedTuple):
    """An edge record before graph insertion: ``(u, v, edge_type, t)``."""

    u: int
    v: int
    edge_type: str
    t: float


def _is_time_sorted(edges: Sequence[StreamEdge]) -> bool:
    """True when ``edges`` are already in non-decreasing timestamp order."""
    return all(edges[i - 1].t <= edges[i].t for i in range(1, len(edges)))


@dataclass
class EdgeStream:
    """A chronologically sorted sequence of edge records.

    Construction sorts by timestamp (stable, so simultaneous edges keep
    their given order — the paper's static Amazon graph has one shared
    timestamp for every edge).
    """

    edges: List[StreamEdge]

    def __post_init__(self) -> None:
        # Streams are overwhelmingly constructed from already-ordered data
        # (slices of other streams, replay hand-off); an O(n) sortedness
        # check skips the sort and preserves the input's identity order.
        if _is_time_sorted(self.edges):
            self.edges = list(self.edges)
        else:
            self.edges = sorted(self.edges, key=lambda e: e.t)

    @classmethod
    def from_tuples(cls, tuples: Sequence[Tuple[int, int, str, float]]) -> "EdgeStream":
        return cls([StreamEdge(*t) for t in tuples])

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[StreamEdge]:
        return iter(self.edges)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return EdgeStream(self.edges[item])
        return self.edges[item]

    def timestamps(self) -> np.ndarray:
        return np.asarray([e.t for e in self.edges], dtype=np.float64)

    def chronological_split(
        self, train_frac: float = 0.80, valid_frac: float = 0.01
    ) -> Tuple["EdgeStream", "EdgeStream", "EdgeStream"]:
        """Split into (train, valid, test) by time; test gets the rest."""
        if not 0.0 < train_frac < 1.0 or valid_frac < 0.0:
            raise ValueError(f"bad fractions: train={train_frac}, valid={valid_frac}")
        if train_frac + valid_frac >= 1.0:
            raise ValueError("train + valid fractions must leave room for test")
        n = len(self.edges)
        n_train = int(round(n * train_frac))
        n_valid = int(round(n * valid_frac))
        return (
            EdgeStream(self.edges[:n_train]),
            EdgeStream(self.edges[n_train : n_train + n_valid]),
            EdgeStream(self.edges[n_train + n_valid :]),
        )

    def sequential_batches(self, batch_size: int) -> List["EdgeStream"]:
        """Consecutive batches of ``batch_size`` edges (last may be short)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return [
            EdgeStream(self.edges[i : i + batch_size])
            for i in range(0, len(self.edges), batch_size)
        ]

    def split_train_valid(self, valid_size: int) -> Tuple["EdgeStream", "EdgeStream"]:
        """Last ``valid_size`` edges become validation (Algorithm 1 line 5).

        When the stream is too short to spare ``valid_size`` edges, the
        validation set shrinks so at least one edge remains for training.
        """
        if valid_size < 0:
            raise ValueError(f"valid_size must be >= 0, got {valid_size}")
        valid_size = min(valid_size, max(0, len(self.edges) - 1))
        if valid_size == 0:
            return EdgeStream(list(self.edges)), EdgeStream([])
        return (
            EdgeStream(self.edges[:-valid_size]),
            EdgeStream(self.edges[-valid_size:]),
        )

    def equal_slices(self, parts: int) -> List["EdgeStream"]:
        """Split into ``parts`` equally sized chronological slices."""
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        bounds = np.linspace(0, len(self.edges), parts + 1).astype(int)
        return [
            EdgeStream(self.edges[bounds[i] : bounds[i + 1]]) for i in range(parts)
        ]

    def build_graph(
        self,
        schema: GraphSchema,
        num_nodes_by_type: Sequence[Tuple[str, int]],
        max_neighbors: int = None,
    ) -> DMHG:
        """Materialise a :class:`DMHG` containing every edge of the stream.

        ``num_nodes_by_type`` fixes the node-id layout: node ids are
        assigned contiguously per type, in the given order, so streams and
        datasets agree on ids.
        """
        graph = DMHG(schema, max_neighbors=max_neighbors)
        for node_type, count in num_nodes_by_type:
            graph.add_nodes(node_type, count)
        for e in self.edges:
            graph.add_edge(e.u, e.v, e.edge_type, e.t)
        return graph
