"""Dynamic multiplex heterogeneous graph (DMHG) substrate.

Implements Definition 1 of the paper: a graph ``G = (V, E, O, R)`` whose
temporal edges ``(u, v, r, t)`` arrive as a stream, together with the
multiplex metapath machinery (Definition 3) and the influenced-graph
sampling used by SUPA (Section III-B).
"""

from repro.graph.dmhg import DMHG, TemporalEdge
from repro.graph.metapath import MultiplexMetapath
from repro.graph.sampling import InfluencedGraph, Walk, WalkStep, sample_influenced_graph, sample_metapath_walk
from repro.graph.schema import GraphSchema
from repro.graph.streams import EdgeStream

__all__ = [
    "DMHG",
    "TemporalEdge",
    "MultiplexMetapath",
    "InfluencedGraph",
    "Walk",
    "WalkStep",
    "sample_influenced_graph",
    "sample_metapath_walk",
    "GraphSchema",
    "EdgeStream",
]
