"""Automatic multiplex metapath mining (the paper's stated future work).

Section VI: "In the future, SUPA will be developed to explore the
constraints on the edge type sets of multiplex metapath schemas and
compute the set of multiplex metapath schemas automatically."  This
module provides that capability: it mines frequent symmetric type
sequences from unconstrained random walks over an observed graph prefix
and emits them as :class:`MultiplexMetapath` schemas.

Approach: sample walks, project each onto its (node type, edge type)
signature, count signature n-grams of the requested lengths, keep the
most frequent symmetric ones, and merge edge types observed between the
same type pair into multiplex edge-type sets.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.dmhg import DMHG
from repro.graph.metapath import MultiplexMetapath
from repro.utils.rng import RngLike, new_rng


def _walk_signature(
    graph: DMHG, nodes: Sequence[int], rels: Sequence[int]
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    node_types = tuple(graph.node_type(n) for n in nodes)
    edge_types = tuple(graph.schema.edge_types[r] for r in rels)
    return node_types, edge_types


def mine_metapaths(
    graph: DMHG,
    num_walks: int = 200,
    walk_length: int = 4,
    lengths: Sequence[int] = (3,),
    top_k: int = 4,
    min_support: int = 5,
    merge_edge_types: bool = True,
    rng: RngLike = 0,
) -> List[MultiplexMetapath]:
    """Mine up to ``top_k`` frequent multiplex metapath schemas.

    Parameters
    ----------
    graph:
        The observed graph prefix to mine from.
    num_walks / walk_length:
        Random-walk sampling budget.
    lengths:
        Schema lengths ``|P|`` to consider (3 = one intermediate hop,
        the shape of every schema in the paper's Table IV).
    top_k:
        Maximum number of schemas returned (most frequent first).
    min_support:
        Minimum occurrence count for a type sequence to qualify.
    merge_edge_types:
        Merge all edge types seen between the same node-type pair into
        one multiplex edge-type set (Table IV style); otherwise each
        observed edge-type sequence stays its own schema.
    """
    if graph.num_edges == 0:
        return []
    rng = new_rng(rng)

    # Collect typed n-grams from unconstrained walks.
    sequence_counts: Counter = Counter()
    pair_edge_types: Dict[Tuple[str, str], Set[str]] = {}
    for _ in range(num_walks):
        start = int(rng.integers(graph.num_nodes))
        nodes = [start]
        rels: List[int] = []
        current = start
        for _ in range(walk_length - 1):
            nbrs = graph.neighbors(current)
            if not nbrs:
                break
            other, rel, _, _ = nbrs[int(rng.integers(len(nbrs)))]
            nodes.append(other)
            rels.append(rel)
            current = other
        if len(nodes) < 2:
            continue
        node_types, edge_types = _walk_signature(graph, nodes, rels)
        for a, b, r in zip(node_types, node_types[1:], edge_types):
            pair_edge_types.setdefault((a, b), set()).add(r)
            pair_edge_types.setdefault((b, a), set()).add(r)
        for length in lengths:
            for i in range(len(node_types) - length + 1):
                window_nodes = node_types[i : i + length]
                window_edges = edge_types[i : i + length - 1]
                sequence_counts[(window_nodes, window_edges)] += 1

    # Aggregate by node-type sequence (edge sets merged per hop).
    by_type_sequence: Counter = Counter()
    for (node_seq, _), count in sequence_counts.items():
        by_type_sequence[node_seq] += count

    schemas: List[MultiplexMetapath] = []
    seen: Set[Tuple] = set()
    for node_seq, count in by_type_sequence.most_common():
        if len(schemas) >= top_k:
            break
        if count < min_support:
            continue
        if node_seq != tuple(reversed(node_seq)):
            continue  # only symmetric schemas tile into long walks
        if merge_edge_types:
            edge_sets = []
            valid = True
            for a, b in zip(node_seq, node_seq[1:]):
                types = pair_edge_types.get((a, b), set())
                if not types:
                    valid = False
                    break
                edge_sets.append(sorted(types))
            if not valid:
                continue
            key = (node_seq, tuple(tuple(s) for s in edge_sets))
            if key in seen:
                continue
            seen.add(key)
            schema = MultiplexMetapath.create(list(node_seq), edge_sets)
            schema.validate_against(graph.schema)
            schemas.append(schema)
        else:
            for (seq, edge_seq), c in sequence_counts.items():
                if seq != node_seq or c < min_support:
                    continue
                key = (seq, edge_seq)
                if key in seen:
                    continue
                seen.add(key)
                schema = MultiplexMetapath.create(
                    list(seq), [[r] for r in edge_seq]
                )
                schema.validate_against(graph.schema)
                schemas.append(schema)
                if len(schemas) >= top_k:
                    break
    return schemas
