"""Influenced graph sampling (Section III-B).

For a new edge ``(u, v, r, t)`` the Influenced Graph Sampling Module draws
``k`` metapath-constrained random walks of length ``l`` from each of the
two interactive nodes (Eq. 1-3).  The union of walks is the *influenced
graph* ``G_{s,e}`` on which the Time-aware Propagation Module spreads the
interaction information.

Walks are sampled *before* the new edge is inserted into the graph, so a
walk never trivially crosses the edge whose influence it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.dmhg import DMHG
from repro.graph.metapath import MultiplexMetapath
from repro.utils.rng import RngLike, new_rng


class WalkStep(NamedTuple):
    """One node on a walk plus the edge used to arrive at it.

    ``rel`` and ``t`` are ``None`` for the walk's start node.
    """

    node: int
    rel: Optional[int]
    t: Optional[float]


@dataclass
class Walk:
    """A metapath-constrained random walk: a sequence of :class:`WalkStep`."""

    steps: List[WalkStep]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def start(self) -> int:
        return self.steps[0].node

    def nodes(self) -> List[int]:
        return [s.node for s in self.steps]

    def hops(self) -> List[WalkStep]:
        """Steps after the start node, each carrying its arrival edge."""
        return self.steps[1:]


@dataclass
class InfluencedGraph:
    """The sampled influenced graph ``G_{s,e}`` of a new edge.

    ``walks_u``/``walks_v`` are the path sets ``p_u``/``p_v`` of Eq. 1,
    rooted at the two interactive nodes.
    """

    u: int
    v: int
    rel: int
    t: float
    walks_u: List[Walk] = field(default_factory=list)
    walks_v: List[Walk] = field(default_factory=list)

    @property
    def walks(self) -> List[Walk]:
        return self.walks_u + self.walks_v

    def influenced_nodes(self) -> Set[int]:
        """Nodes reached by any walk, excluding the two interactive nodes."""
        nodes: Set[int] = set()
        for walk in self.walks:
            nodes.update(step.node for step in walk.hops())
        nodes.discard(self.u)
        nodes.discard(self.v)
        return nodes


def applicable_metapaths(
    metapaths: Sequence[MultiplexMetapath], node_type: str
) -> List[MultiplexMetapath]:
    """Metapaths whose head type matches ``node_type``."""
    return [p for p in metapaths if p.head == node_type]


class CompiledMetapath:
    """A metapath pre-resolved to integer type/relation ids.

    The walk hot path runs millions of "which node type next, which
    edge types allowed" lookups; compiling once per (metapath, schema)
    removes every per-step string lookup.
    """

    def __init__(self, metapath: MultiplexMetapath, schema) -> None:
        self.metapath = metapath
        self.head_type_id = schema.node_type_id(metapath.head)
        self.period = len(metapath) - 1
        self._type_ids = [schema.node_type_id(t) for t in metapath.node_types]
        self._rel_id_sets = [
            frozenset(schema.edge_type_id(r) for r in rset)
            for rset in metapath.edge_type_sets
        ]
        # (rel_ids, next_type_id) per hop position within one period —
        # the exact filter pair every hop query uses, precomputed so the
        # batch sampler can key its candidate cache on it.
        self._hop_filters = [
            (self._rel_id_sets[p], self._type_ids[(p + 1) % self.period])
            for p in range(self.period)
        ]
        self._filters_for_len: Dict[int, list] = {}

    def type_id_at(self, position: int) -> int:
        return self._type_ids[position % self.period]

    def rel_ids_at(self, hop: int) -> frozenset:
        return self._rel_id_sets[hop % self.period]

    def hop_filter(self, position: int) -> Tuple[frozenset, int]:
        """The ``(rel_ids, next_type_id)`` filter pair of hop ``position``."""
        return self._hop_filters[position % self.period]

    def filters_for(self, hops: int) -> list:
        """:meth:`hop_filter` of positions ``0..hops-1`` as one list, so
        the walk hot loop iterates filter pairs with no per-hop indexing
        or modulo.  Cached per length (walk length is a config constant,
        so in practice this holds a single entry)."""
        cached = self._filters_for_len.get(hops)
        if cached is None:
            cached = [self._hop_filters[p % self.period] for p in range(hops)]
            self._filters_for_len[hops] = cached
        return cached


class CompiledMetapathSet:
    """Metapaths compiled against a schema, indexed by head node type id."""

    def __init__(self, metapaths: Sequence[MultiplexMetapath], schema) -> None:
        self.by_head: dict = {}
        for mp in metapaths:
            compiled = CompiledMetapath(mp, schema)
            self.by_head.setdefault(compiled.head_type_id, []).append(compiled)

    def for_type(self, type_id: int) -> List["CompiledMetapath"]:
        return self.by_head.get(type_id, [])


def _sample_compiled_walk(
    graph: DMHG, start: int, compiled: CompiledMetapath, length: int, rng
) -> Walk:
    """Id-level walk used by the training hot path (same semantics as
    :func:`sample_metapath_walk`)."""
    steps = [WalkStep(start, None, None)]
    current = start
    for position in range(length - 1):
        candidates = graph.neighbors_ids(
            current,
            rel_ids=compiled.rel_ids_at(position),
            type_id=compiled.type_id_at(position + 1),
        )
        if not candidates:
            break
        entry = candidates[int(rng.integers(len(candidates)))]
        steps.append(WalkStep(entry.other, entry.rel, entry.t))
        current = entry.other
    return Walk(steps)


def sample_influenced_graph_compiled(
    graph: DMHG,
    u: int,
    v: int,
    rel: int,
    t: float,
    compiled: CompiledMetapathSet,
    num_walks: int,
    walk_length: int,
    rng,
) -> InfluencedGraph:
    """Hot-path variant of :func:`sample_influenced_graph` taking ids and
    a precompiled metapath set."""
    result = InfluencedGraph(u=u, v=v, rel=rel, t=float(t))
    for node, bucket in ((u, result.walks_u), (v, result.walks_v)):
        options = compiled.for_type(graph.node_type_id(node))
        if not options:
            continue
        for _ in range(num_walks):
            mp = options[int(rng.integers(len(options)))]
            walk = _sample_compiled_walk(graph, node, mp, walk_length, rng)
            if len(walk) > 1:
                bucket.append(walk)
    return result


class WalkPlanArrays(NamedTuple):
    """Structure-of-arrays form of one edge's influenced graph.

    ``nodes``/``rels``/``times`` hold every walk's hops back to back;
    ``offsets`` is the CSR boundary array (walk ``w`` owns
    ``[offsets[w], offsets[w+1])``) and ``sides`` records whether a walk
    is rooted at ``u`` (0) or ``v`` (1).  Start nodes are not stored —
    propagation only ever consumes hops.
    """

    nodes: np.ndarray  # (S,) int64
    rels: np.ndarray  # (S,) int64
    times: np.ndarray  # (S,) float64
    offsets: np.ndarray  # (W + 1,) int64
    sides: np.ndarray  # (W,) int64


_EMPTY_CANDIDATES = (
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.float64),
)


class NeighborCandidateCache:
    """Memoises filtered neighbour queries as flat arrays.

    The walk hot path asks the same ``(node, rel filter, type filter)``
    question over and over — InsLearn replays each batch up to
    ``N_iter`` times over a graph that does not change during the
    replays.  This cache answers repeats from ``(others, rels, times)``
    numpy arrays instead of re-scanning adjacency lists, and drops
    everything the moment :attr:`DMHG.mutation_count` moves, so a stale
    answer is impossible.
    """

    def __init__(self, graph: DMHG):
        self.graph = graph
        self._stamp = graph.mutation_count
        self._store: Dict[Tuple[int, frozenset, Optional[int]], tuple] = {}
        #: bound ``dict.get`` of the store (stable: :meth:`sync` clears
        #: the dict in place, never rebinds it) — the walk sampler's hot
        #: loop calls it directly after :meth:`sync`.
        self.store_get = self._store.get
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def sync(self) -> None:
        """Drop every entry if the graph has mutated since the last call.

        The walk sampler calls this once per edge and then reads
        :attr:`_store` directly — the graph cannot mutate in the middle
        of sampling one edge's walks, so re-checking the stamp on every
        hop (tens of times per edge) would be pure overhead.
        """
        stamp = self.graph.mutation_count
        if stamp != self._stamp:
            self._store.clear()
            self._stamp = stamp

    def fill(
        self, key: Tuple[int, frozenset, Optional[int]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Answer a missed ``(node, rel_ids, type_id)`` query from the
        graph and memoise it.  Callers must :meth:`sync` first."""
        self.misses += 1
        entries = self.graph.neighbors_ids(key[0], rel_ids=key[1], type_id=key[2])
        if entries:
            hit = (
                np.asarray([e.other for e in entries], dtype=np.int64),
                np.asarray([e.rel for e in entries], dtype=np.int64),
                np.asarray([e.t for e in entries], dtype=np.float64),
            )
        else:
            hit = _EMPTY_CANDIDATES
        self._store[key] = hit
        return hit

    def candidates(
        self, node: int, rel_ids: frozenset, type_id: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(others, rels, times)`` arrays of admissible neighbours of
        ``node``, in adjacency (insertion) order."""
        self.sync()
        key = (node, rel_ids, type_id)
        hit = self._store.get(key)
        if hit is None:
            return self.fill(key)
        self.hits += 1
        return hit


def sample_walks_into(
    graph: DMHG,
    u: int,
    v: int,
    compiled: CompiledMetapathSet,
    num_walks: int,
    walk_length: int,
    rng,
    cache: Optional[NeighborCandidateCache],
    nodes: List[int],
    rels: List[int],
    times: List[float],
    offsets: List[int],
    sides: List[int],
) -> int:
    """Sample one edge's influenced graph, appending hops to flat lists.

    The batch plan compiler passes *batch-level* lists here so a whole
    micro-batch accumulates into one flat CSR structure with a single
    list→array conversion at the end — no per-edge arrays, no per-edge
    concatenation.  ``offsets`` must arrive non-empty (the running CSR
    boundary list, ``[0]`` for a fresh structure); entries appended to
    it are global positions in ``nodes``.  Returns the number of hops
    appended for this edge.

    RNG-order contract: this function consumes *exactly* the same draws
    in the same order as :func:`sample_influenced_graph_compiled` — per
    side (``u`` first), per walk: one metapath draw (even when only one
    metapath applies), then one uniform candidate draw per hop until the
    walk length is reached or no candidate exists.  Walks that fail at
    the first hop are dropped (their metapath draw stays consumed,
    matching the reference's ``len(walk) > 1`` filter).
    """
    begin_edge = len(nodes)
    hops = walk_length - 1
    integers = rng.integers
    if cache is not None:
        cache.sync()
        store = cache.store_get
        fill = cache.fill
    for side, start in ((0, u), (1, v)):
        options = compiled.for_type(graph.node_type_id(start))
        if not options:
            continue
        num_options = len(options)
        for _ in range(num_walks):
            mp = options[integers(num_options)]
            filters = mp.filters_for(hops)
            current = start
            begin = len(nodes)
            if cache is not None:
                for rel_ids, type_id in filters:
                    key = (current, rel_ids, type_id)
                    hit = store(key)
                    if hit is None:
                        hit = fill(key)
                    else:
                        cache.hits += 1
                    others, hop_rels, hop_times = hit
                    n = others.shape[0]
                    if n == 0:
                        break
                    pick = integers(n)
                    current = int(others[pick])
                    nodes.append(current)
                    rels.append(hop_rels[pick])
                    times.append(hop_times[pick])
            else:
                for rel_ids, type_id in filters:
                    candidates = graph.neighbors_ids(
                        current, rel_ids=rel_ids, type_id=type_id
                    )
                    if not candidates:
                        break
                    entry = candidates[int(integers(len(candidates)))]
                    current = entry.other
                    nodes.append(entry.other)
                    rels.append(entry.rel)
                    times.append(entry.t)
            if len(nodes) > begin:
                offsets.append(len(nodes))
                sides.append(side)
    return len(nodes) - begin_edge


def sample_walk_plan(
    graph: DMHG,
    u: int,
    v: int,
    compiled: CompiledMetapathSet,
    num_walks: int,
    walk_length: int,
    rng,
    cache: Optional[NeighborCandidateCache] = None,
) -> WalkPlanArrays:
    """Sample one edge's influenced graph directly into plan arrays.

    Single-edge wrapper over :func:`sample_walks_into` (same RNG-order
    contract) — kept as the standalone API; the batch compiler uses the
    flat-list form directly.
    """
    nodes: List[int] = []
    rels: List[int] = []
    times: List[float] = []
    offsets: List[int] = [0]
    sides: List[int] = []
    sample_walks_into(
        graph, u, v, compiled, num_walks, walk_length, rng, cache,
        nodes, rels, times, offsets, sides,
    )
    return WalkPlanArrays(
        nodes=np.asarray(nodes, dtype=np.int64),
        rels=np.asarray(rels, dtype=np.int64),
        times=np.asarray(times, dtype=np.float64),
        offsets=np.asarray(offsets, dtype=np.int64),
        sides=np.asarray(sides, dtype=np.int64),
    )


def sample_metapath_walk(
    graph: DMHG,
    start: int,
    metapath: MultiplexMetapath,
    length: int,
    rng: RngLike = None,
) -> Walk:
    """One random walk of up to ``length`` nodes following ``metapath``.

    At position ``i`` the next node must have type ``o_{P, f(i+1)}`` and be
    reachable over an edge whose type is in ``R_{P, f(i)}`` (Eq. 2-3); the
    choice among admissible neighbours is uniform.  The walk stops early
    when no admissible neighbour exists.
    """
    if length < 1:
        raise ValueError(f"walk length must be >= 1, got {length}")
    if graph.node_type(start) != metapath.head:
        raise ValueError(
            f"start node {start} has type {graph.node_type(start)!r}; "
            f"metapath head is {metapath.head!r}"
        )
    rng = new_rng(rng)
    steps = [WalkStep(start, None, None)]
    current = start
    for position in range(length - 1):
        wanted_type = metapath.node_type_at(position + 1)
        wanted_edges = metapath.edge_types_at(position)
        candidates = graph.neighbors(
            current, edge_types=sorted(wanted_edges), node_type=wanted_type
        )
        if not candidates:
            break
        other, rel, t, _ = candidates[int(rng.integers(len(candidates)))]
        steps.append(WalkStep(other, rel, t))
        current = other
    return Walk(steps)


def sample_influenced_graph(
    graph: DMHG,
    u: int,
    v: int,
    edge_type: str,
    t: float,
    metapaths: Sequence[MultiplexMetapath],
    num_walks: int,
    walk_length: int,
    rng: RngLike = None,
) -> InfluencedGraph:
    """Sample ``G_{s,e}`` for the new edge ``(u, v, edge_type, t)``.

    Draws ``num_walks`` (the paper's ``k``) walks of ``walk_length``
    (the paper's ``l``) from each interactive node.  Each walk picks a
    uniformly random schema among those applicable to its start node; a
    node with no applicable schema contributes no walks (its side of the
    influenced graph is empty, and propagation towards it is skipped).
    """
    if num_walks < 0:
        raise ValueError(f"num_walks must be >= 0, got {num_walks}")
    rng = new_rng(rng)
    rel = graph.schema.edge_type_id(edge_type)
    result = InfluencedGraph(u=u, v=v, rel=rel, t=float(t))
    for node, bucket in ((u, result.walks_u), (v, result.walks_v)):
        candidates = applicable_metapaths(metapaths, graph.node_type(node))
        if not candidates:
            continue
        for _ in range(num_walks):
            metapath = candidates[int(rng.integers(len(candidates)))]
            walk = sample_metapath_walk(graph, node, metapath, walk_length, rng)
            if len(walk) > 1:
                bucket.append(walk)
    return result


def random_walk_corpus(
    graph: DMHG,
    num_walks: int,
    walk_length: int,
    rng: RngLike = None,
    metapaths: Optional[Sequence[MultiplexMetapath]] = None,
) -> List[List[int]]:
    """A DeepWalk-style corpus: ``num_walks`` walks from every node.

    With ``metapaths`` given, walks are schema-constrained (metapath2vec
    style); otherwise they are unconstrained uniform random walks.  Used
    by the random-walk baselines.
    """
    rng = new_rng(rng)
    corpus: List[List[int]] = []
    for start in range(graph.num_nodes):
        for _ in range(num_walks):
            if metapaths is not None:
                options = applicable_metapaths(metapaths, graph.node_type(start))
                if not options:
                    continue
                mp = options[int(rng.integers(len(options)))]
                walk = sample_metapath_walk(graph, start, mp, walk_length, rng)
                seq = walk.nodes()
            else:
                seq = [start]
                current = start
                for _ in range(walk_length - 1):
                    nbrs = graph.neighbors(current)
                    if not nbrs:
                        break
                    current = nbrs[int(rng.integers(len(nbrs)))][0]
                    seq.append(current)
            if len(seq) > 1:
                corpus.append(seq)
    return corpus
