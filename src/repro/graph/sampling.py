"""Influenced graph sampling (Section III-B).

For a new edge ``(u, v, r, t)`` the Influenced Graph Sampling Module draws
``k`` metapath-constrained random walks of length ``l`` from each of the
two interactive nodes (Eq. 1-3).  The union of walks is the *influenced
graph* ``G_{s,e}`` on which the Time-aware Propagation Module spreads the
interaction information.

Walks are sampled *before* the new edge is inserted into the graph, so a
walk never trivially crosses the edge whose influence it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Sequence, Set

import numpy as np

from repro.graph.dmhg import DMHG
from repro.graph.metapath import MultiplexMetapath
from repro.utils.rng import RngLike, new_rng


class WalkStep(NamedTuple):
    """One node on a walk plus the edge used to arrive at it.

    ``rel`` and ``t`` are ``None`` for the walk's start node.
    """

    node: int
    rel: Optional[int]
    t: Optional[float]


@dataclass
class Walk:
    """A metapath-constrained random walk: a sequence of :class:`WalkStep`."""

    steps: List[WalkStep]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def start(self) -> int:
        return self.steps[0].node

    def nodes(self) -> List[int]:
        return [s.node for s in self.steps]

    def hops(self) -> List[WalkStep]:
        """Steps after the start node, each carrying its arrival edge."""
        return self.steps[1:]


@dataclass
class InfluencedGraph:
    """The sampled influenced graph ``G_{s,e}`` of a new edge.

    ``walks_u``/``walks_v`` are the path sets ``p_u``/``p_v`` of Eq. 1,
    rooted at the two interactive nodes.
    """

    u: int
    v: int
    rel: int
    t: float
    walks_u: List[Walk] = field(default_factory=list)
    walks_v: List[Walk] = field(default_factory=list)

    @property
    def walks(self) -> List[Walk]:
        return self.walks_u + self.walks_v

    def influenced_nodes(self) -> Set[int]:
        """Nodes reached by any walk, excluding the two interactive nodes."""
        nodes: Set[int] = set()
        for walk in self.walks:
            nodes.update(step.node for step in walk.hops())
        nodes.discard(self.u)
        nodes.discard(self.v)
        return nodes


def applicable_metapaths(
    metapaths: Sequence[MultiplexMetapath], node_type: str
) -> List[MultiplexMetapath]:
    """Metapaths whose head type matches ``node_type``."""
    return [p for p in metapaths if p.head == node_type]


class CompiledMetapath:
    """A metapath pre-resolved to integer type/relation ids.

    The walk hot path runs millions of "which node type next, which
    edge types allowed" lookups; compiling once per (metapath, schema)
    removes every per-step string lookup.
    """

    def __init__(self, metapath: MultiplexMetapath, schema) -> None:
        self.metapath = metapath
        self.head_type_id = schema.node_type_id(metapath.head)
        self.period = len(metapath) - 1
        self._type_ids = [schema.node_type_id(t) for t in metapath.node_types]
        self._rel_id_sets = [
            frozenset(schema.edge_type_id(r) for r in rset)
            for rset in metapath.edge_type_sets
        ]

    def type_id_at(self, position: int) -> int:
        return self._type_ids[position % self.period]

    def rel_ids_at(self, hop: int) -> frozenset:
        return self._rel_id_sets[hop % self.period]


class CompiledMetapathSet:
    """Metapaths compiled against a schema, indexed by head node type id."""

    def __init__(self, metapaths: Sequence[MultiplexMetapath], schema) -> None:
        self.by_head: dict = {}
        for mp in metapaths:
            compiled = CompiledMetapath(mp, schema)
            self.by_head.setdefault(compiled.head_type_id, []).append(compiled)

    def for_type(self, type_id: int) -> List["CompiledMetapath"]:
        return self.by_head.get(type_id, [])


def _sample_compiled_walk(
    graph: DMHG, start: int, compiled: CompiledMetapath, length: int, rng
) -> Walk:
    """Id-level walk used by the training hot path (same semantics as
    :func:`sample_metapath_walk`)."""
    steps = [WalkStep(start, None, None)]
    current = start
    for position in range(length - 1):
        candidates = graph.neighbors_ids(
            current,
            rel_ids=compiled.rel_ids_at(position),
            type_id=compiled.type_id_at(position + 1),
        )
        if not candidates:
            break
        entry = candidates[int(rng.integers(len(candidates)))]
        steps.append(WalkStep(entry.other, entry.rel, entry.t))
        current = entry.other
    return Walk(steps)


def sample_influenced_graph_compiled(
    graph: DMHG,
    u: int,
    v: int,
    rel: int,
    t: float,
    compiled: CompiledMetapathSet,
    num_walks: int,
    walk_length: int,
    rng,
) -> InfluencedGraph:
    """Hot-path variant of :func:`sample_influenced_graph` taking ids and
    a precompiled metapath set."""
    result = InfluencedGraph(u=u, v=v, rel=rel, t=float(t))
    for node, bucket in ((u, result.walks_u), (v, result.walks_v)):
        options = compiled.for_type(graph.node_type_id(node))
        if not options:
            continue
        for _ in range(num_walks):
            mp = options[int(rng.integers(len(options)))]
            walk = _sample_compiled_walk(graph, node, mp, walk_length, rng)
            if len(walk) > 1:
                bucket.append(walk)
    return result


def sample_metapath_walk(
    graph: DMHG,
    start: int,
    metapath: MultiplexMetapath,
    length: int,
    rng: RngLike = None,
) -> Walk:
    """One random walk of up to ``length`` nodes following ``metapath``.

    At position ``i`` the next node must have type ``o_{P, f(i+1)}`` and be
    reachable over an edge whose type is in ``R_{P, f(i)}`` (Eq. 2-3); the
    choice among admissible neighbours is uniform.  The walk stops early
    when no admissible neighbour exists.
    """
    if length < 1:
        raise ValueError(f"walk length must be >= 1, got {length}")
    if graph.node_type(start) != metapath.head:
        raise ValueError(
            f"start node {start} has type {graph.node_type(start)!r}; "
            f"metapath head is {metapath.head!r}"
        )
    rng = new_rng(rng)
    steps = [WalkStep(start, None, None)]
    current = start
    for position in range(length - 1):
        wanted_type = metapath.node_type_at(position + 1)
        wanted_edges = metapath.edge_types_at(position)
        candidates = graph.neighbors(
            current, edge_types=sorted(wanted_edges), node_type=wanted_type
        )
        if not candidates:
            break
        other, rel, t, _ = candidates[int(rng.integers(len(candidates)))]
        steps.append(WalkStep(other, rel, t))
        current = other
    return Walk(steps)


def sample_influenced_graph(
    graph: DMHG,
    u: int,
    v: int,
    edge_type: str,
    t: float,
    metapaths: Sequence[MultiplexMetapath],
    num_walks: int,
    walk_length: int,
    rng: RngLike = None,
) -> InfluencedGraph:
    """Sample ``G_{s,e}`` for the new edge ``(u, v, edge_type, t)``.

    Draws ``num_walks`` (the paper's ``k``) walks of ``walk_length``
    (the paper's ``l``) from each interactive node.  Each walk picks a
    uniformly random schema among those applicable to its start node; a
    node with no applicable schema contributes no walks (its side of the
    influenced graph is empty, and propagation towards it is skipped).
    """
    if num_walks < 0:
        raise ValueError(f"num_walks must be >= 0, got {num_walks}")
    rng = new_rng(rng)
    rel = graph.schema.edge_type_id(edge_type)
    result = InfluencedGraph(u=u, v=v, rel=rel, t=float(t))
    for node, bucket in ((u, result.walks_u), (v, result.walks_v)):
        candidates = applicable_metapaths(metapaths, graph.node_type(node))
        if not candidates:
            continue
        for _ in range(num_walks):
            metapath = candidates[int(rng.integers(len(candidates)))]
            walk = sample_metapath_walk(graph, node, metapath, walk_length, rng)
            if len(walk) > 1:
                bucket.append(walk)
    return result


def random_walk_corpus(
    graph: DMHG,
    num_walks: int,
    walk_length: int,
    rng: RngLike = None,
    metapaths: Optional[Sequence[MultiplexMetapath]] = None,
) -> List[List[int]]:
    """A DeepWalk-style corpus: ``num_walks`` walks from every node.

    With ``metapaths`` given, walks are schema-constrained (metapath2vec
    style); otherwise they are unconstrained uniform random walks.  Used
    by the random-walk baselines.
    """
    rng = new_rng(rng)
    corpus: List[List[int]] = []
    for start in range(graph.num_nodes):
        for _ in range(num_walks):
            if metapaths is not None:
                options = applicable_metapaths(metapaths, graph.node_type(start))
                if not options:
                    continue
                mp = options[int(rng.integers(len(options)))]
                walk = sample_metapath_walk(graph, start, mp, walk_length, rng)
                seq = walk.nodes()
            else:
                seq = [start]
                current = start
                for _ in range(walk_length - 1):
                    nbrs = graph.neighbors(current)
                    if not nbrs:
                        break
                    current = nbrs[int(rng.integers(len(nbrs)))][0]
                    seq.append(current)
            if len(seq) > 1:
                corpus.append(seq)
    return corpus
