"""Multiplex metapath schemas (Definition 3).

A multiplex metapath ``P = o_1 --R_1--> o_2 --R_2--> ... --R_{n-1}--> o_n``
prescribes node types and *sets* of admissible edge types along a path.
Walks longer than ``|P|`` repeat the schema by treating the tail node type
as the head (the paper's modular index ``f(i, |P|-1)``), which requires a
symmetric schema; Eq. 4 symmetrises an asymmetric one by reflection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from repro.graph.schema import GraphSchema


def schema_index(i: int, period: int) -> int:
    """The paper's ``f(i, L) = ((i - 1) mod L) + 1`` with 0-based ``i``.

    Maps a 0-based walk position onto a 0-based schema position, wrapping
    with period ``period = |P| - 1``.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    return i % period


@dataclass(frozen=True)
class MultiplexMetapath:
    """A typed walk template over a DMHG.

    Parameters
    ----------
    node_types:
        The sequence ``(o_1, ..., o_n)``, length >= 2.
    edge_type_sets:
        The sequence ``(R_1, ..., R_{n-1})`` of admissible edge type sets,
        one per hop.
    """

    node_types: Tuple[str, ...]
    edge_type_sets: Tuple[FrozenSet[str], ...]

    def __post_init__(self) -> None:
        if len(self.node_types) < 2:
            raise ValueError("a metapath needs at least two node types")
        if len(self.edge_type_sets) != len(self.node_types) - 1:
            raise ValueError(
                f"need {len(self.node_types) - 1} edge type sets, "
                f"got {len(self.edge_type_sets)}"
            )
        for rset in self.edge_type_sets:
            if not rset:
                raise ValueError("edge type sets must be non-empty")

    @classmethod
    def create(
        cls,
        node_types: Sequence[str],
        edge_type_sets: Sequence[Sequence[str]],
    ) -> "MultiplexMetapath":
        return cls(
            tuple(node_types),
            tuple(frozenset(rset) for rset in edge_type_sets),
        )

    def __len__(self) -> int:
        """The schema length ``|P| = n`` (number of node slots)."""
        return len(self.node_types)

    @property
    def head(self) -> str:
        return self.node_types[0]

    @property
    def is_symmetric(self) -> bool:
        """True when the schema equals its own reflection.

        Only symmetric schemas tile into walks longer than ``|P|``.
        """
        return (
            self.node_types == tuple(reversed(self.node_types))
            and self.edge_type_sets == tuple(reversed(self.edge_type_sets))
        )

    def symmetrized(self) -> "MultiplexMetapath":
        """Eq. 4: reflect an asymmetric schema into a symmetric one.

        ``o_1 -R_1-> ... -R_{n-1}-> o_n`` becomes
        ``o_1 -R_1-> ... -> o_n -R_{n-1}-> ... -R_1-> o_1``.
        Symmetric schemas are returned unchanged.
        """
        if self.is_symmetric:
            return self
        node_types = self.node_types + tuple(reversed(self.node_types[:-1]))
        edge_sets = self.edge_type_sets + tuple(reversed(self.edge_type_sets))
        return MultiplexMetapath(node_types, edge_sets)

    def node_type_at(self, position: int) -> str:
        """Node type required at 0-based walk ``position`` (Eq. 2).

        Positions beyond ``|P| - 1`` wrap with period ``|P| - 1``.
        """
        if position < 0:
            raise ValueError(f"position must be >= 0, got {position}")
        return self.node_types[schema_index(position, len(self) - 1)]

    def edge_types_at(self, hop: int) -> FrozenSet[str]:
        """Admissible edge types for 0-based ``hop`` (Eq. 3), wrapping."""
        if hop < 0:
            raise ValueError(f"hop must be >= 0, got {hop}")
        return self.edge_type_sets[schema_index(hop, len(self) - 1)]

    def validate_against(self, schema: GraphSchema) -> None:
        """Raise if the metapath references types absent from ``schema``
        or hops incompatible with declared edge endpoints."""
        for o in self.node_types:
            schema.node_type_id(o)
        for hop, rset in enumerate(self.edge_type_sets):
            src, dst = self.node_types[hop], self.node_types[hop + 1]
            for r in rset:
                schema.edge_type_id(r)
                if r in schema.endpoints:
                    s, d = schema.endpoints_of(r)
                    if {s, d} != {src, dst} and (s, d) != (src, dst):
                        raise ValueError(
                            f"hop {hop} of metapath uses edge type {r!r} "
                            f"({s}->{d}) between {src} and {dst}"
                        )

    def describe(self) -> str:
        """Human-readable arrow form, e.g. ``user -{click,like}-> video``."""
        parts = [self.node_types[0]]
        for hop, rset in enumerate(self.edge_type_sets):
            parts.append(f"-{{{','.join(sorted(rset))}}}-> {self.node_types[hop + 1]}")
        return " ".join(parts)
