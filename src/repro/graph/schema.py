"""Type registries for dynamic multiplex heterogeneous graphs.

A :class:`GraphSchema` is the ``(O, R)`` part of Definition 1: the node
type set, the edge type set, and — because real recommender graphs attach
each behaviour to specific endpoint types (``click``: User -> Video) — a
mapping from each edge type to its ``(source, target)`` node types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class GraphSchema:
    """The node/edge type universe of a DMHG.

    Parameters
    ----------
    node_types:
        Names of the node types ``O`` (e.g. ``("user", "video", "author")``).
    edge_types:
        Names of the edge types ``R`` (e.g. ``("watch", "like", "upload")``).
    endpoints:
        For each edge type, the ``(source_type, target_type)`` pair it
        connects.  Edges are traversable in both directions; the pair only
        fixes which node plays which role when an edge is created.
    """

    node_types: Tuple[str, ...]
    edge_types: Tuple[str, ...]
    endpoints: Mapping[str, Tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.node_types)) != len(self.node_types):
            raise ValueError(f"duplicate node types: {self.node_types}")
        if len(set(self.edge_types)) != len(self.edge_types):
            raise ValueError(f"duplicate edge types: {self.edge_types}")
        if not self.node_types:
            raise ValueError("a schema needs at least one node type")
        if not self.edge_types:
            raise ValueError("a schema needs at least one edge type")
        for etype, (src, dst) in self.endpoints.items():
            if etype not in self.edge_types:
                raise ValueError(f"endpoints given for unknown edge type {etype!r}")
            for o in (src, dst):
                if o not in self.node_types:
                    raise ValueError(
                        f"edge type {etype!r} references unknown node type {o!r}"
                    )
        # Cached name -> id lookups (the frozen dataclass workaround).
        object.__setattr__(
            self, "_node_index", {name: i for i, name in enumerate(self.node_types)}
        )
        object.__setattr__(
            self, "_edge_index", {name: i for i, name in enumerate(self.edge_types)}
        )

    @classmethod
    def create(
        cls,
        node_types: Sequence[str],
        edge_types: Sequence[str],
        endpoints: Mapping[str, Tuple[str, str]] = (),
    ) -> "GraphSchema":
        """Build a schema, defaulting missing endpoints for homogeneous graphs.

        If there is exactly one node type, every edge type without an
        explicit endpoint pair connects that type to itself.
        """
        endpoints = dict(endpoints)
        if len(node_types) == 1:
            only = node_types[0]
            for etype in edge_types:
                endpoints.setdefault(etype, (only, only))
        return cls(tuple(node_types), tuple(edge_types), endpoints)

    @property
    def num_node_types(self) -> int:
        return len(self.node_types)

    @property
    def num_edge_types(self) -> int:
        return len(self.edge_types)

    def node_type_id(self, name: str) -> int:
        """Integer id of node type ``name`` (stable ordering)."""
        try:
            return self._node_index[name]
        except KeyError:
            raise KeyError(f"unknown node type {name!r}; have {self.node_types}") from None

    def edge_type_id(self, name: str) -> int:
        """Integer id of edge type ``name`` (stable ordering)."""
        try:
            return self._edge_index[name]
        except KeyError:
            raise KeyError(f"unknown edge type {name!r}; have {self.edge_types}") from None

    def endpoints_of(self, edge_type: str) -> Tuple[str, str]:
        """The ``(source_type, target_type)`` pair of ``edge_type``."""
        if edge_type not in self.edge_types:
            raise KeyError(f"unknown edge type {edge_type!r}")
        if edge_type not in self.endpoints:
            raise KeyError(f"edge type {edge_type!r} has no declared endpoints")
        return tuple(self.endpoints[edge_type])

    def edge_types_between(self, src_type: str, dst_type: str) -> Tuple[str, ...]:
        """All edge types connecting ``src_type`` and ``dst_type`` (either way)."""
        hits = []
        for etype in self.edge_types:
            if etype not in self.endpoints:
                continue
            s, d = self.endpoints[etype]
            if {s, d} == {src_type, dst_type} or (s == src_type and d == dst_type):
                hits.append(etype)
        return tuple(hits)

    def describe(self) -> Dict[str, object]:
        """Summary dict used in dataset statistics tables (|O|, |R|)."""
        return {
            "node_types": list(self.node_types),
            "edge_types": list(self.edge_types),
            "|O|": self.num_node_types,
            "|R|": self.num_edge_types,
        }
