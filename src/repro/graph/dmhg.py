"""The dynamic multiplex heterogeneous graph (DMHG) container.

Implements Definition 1: nodes with a type mapping ``phi: V -> O`` and a
stream of temporal edges ``(u, v, r, t)``.  The container supports the
operations the paper's system needs:

* streaming edge insertion (and deletion, Section III-A),
* per-node temporal adjacency with an optional recency cap ``eta``
  (``max_neighbors``) modelling the resource-constrained platforms that
  cause *neighbourhood disturbance* (Section IV-F),
* type/time-filtered neighbour queries for metapath walks,
* last-interaction timestamps for the active time interval ``Delta_V``,
* degree tallies for the skip-gram noise distribution, and
* chronological snapshots for static baselines.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.graph.schema import GraphSchema


class TemporalEdge(NamedTuple):
    """A single temporal edge ``(u, v, r, t)`` plus its store index."""

    u: int
    v: int
    rel: int
    t: float
    index: int


class _AdjEntry(NamedTuple):
    other: int
    rel: int
    t: float
    index: int


class DMHG:
    """A dynamic multiplex heterogeneous graph.

    Parameters
    ----------
    schema:
        The ``(O, R)`` type universe.
    max_neighbors:
        Optional recency cap ``eta``: each node keeps only its most
        recently inserted ``eta`` incident edges for traversal, matching
        the paper's memory-constrained setting.  ``None`` keeps everything.
    """

    def __init__(self, schema: GraphSchema, max_neighbors: Optional[int] = None):
        if max_neighbors is not None and max_neighbors < 1:
            raise ValueError(f"max_neighbors must be >= 1, got {max_neighbors}")
        self.schema = schema
        self.max_neighbors = max_neighbors
        self._node_types: List[int] = []
        self._nodes_by_type: Dict[int, List[int]] = {
            i: [] for i in range(schema.num_node_types)
        }
        self._adj: List[List[_AdjEntry]] = []
        self._edge_u: List[int] = []
        self._edge_v: List[int] = []
        self._edge_rel: List[int] = []
        self._edge_t: List[float] = []
        self._edge_alive: List[bool] = []
        self._num_alive_edges = 0
        self._last_time: List[float] = []
        self._degree: List[int] = []
        self._mutation_count = 0

    # ------------------------------------------------------------------ nodes

    @property
    def mutation_count(self) -> int:
        """Monotone counter bumped by every structural change.

        Neighbourhood caches (``repro.graph.sampling``'s candidate
        cache) compare this stamp to decide whether their cached
        adjacency views are still valid — cheap, exact invalidation
        without back-references from the graph to its caches.
        """
        return self._mutation_count

    def add_node(self, node_type: str) -> int:
        """Create a node of ``node_type`` and return its integer id."""
        type_id = self.schema.node_type_id(node_type)
        self._mutation_count += 1
        node = len(self._node_types)
        self._node_types.append(type_id)
        self._nodes_by_type[type_id].append(node)
        self._adj.append([])
        self._last_time.append(-np.inf)
        self._degree.append(0)
        return node

    def add_nodes(self, node_type: str, count: int) -> List[int]:
        """Create ``count`` nodes of one type; returns their ids."""
        return [self.add_node(node_type) for _ in range(count)]

    @property
    def num_nodes(self) -> int:
        return len(self._node_types)

    def node_type(self, node: int) -> str:
        """The type name ``phi(node)``."""
        return self.schema.node_types[self._node_types[node]]

    def node_type_id(self, node: int) -> int:
        """The integer type id of ``node``."""
        return self._node_types[node]

    def node_type_ids(self) -> np.ndarray:
        """Array of type ids for all nodes (index = node id)."""
        return np.asarray(self._node_types, dtype=np.int64)

    def nodes_of_type(self, node_type: str) -> List[int]:
        """All node ids whose type is ``node_type``."""
        return list(self._nodes_by_type[self.schema.node_type_id(node_type)])

    # ------------------------------------------------------------------ edges

    def add_edge(self, u: int, v: int, edge_type: str, t: float) -> int:
        """Insert edge ``(u, v, r, t)``; returns its index in the edge store.

        Endpoint node types are validated when the schema declares them.
        Insertion refreshes both endpoints' last-interaction timestamps.
        """
        self._check_node(u)
        self._check_node(v)
        rel = self.schema.edge_type_id(edge_type)
        if edge_type in self.schema.endpoints:
            src_type, dst_type = self.schema.endpoints_of(edge_type)
            if self.node_type(u) != src_type or self.node_type(v) != dst_type:
                raise ValueError(
                    f"edge type {edge_type!r} connects {src_type}->{dst_type}, "
                    f"got {self.node_type(u)}->{self.node_type(v)}"
                )
        self._mutation_count += 1
        index = len(self._edge_u)
        self._edge_u.append(u)
        self._edge_v.append(v)
        self._edge_rel.append(rel)
        self._edge_t.append(float(t))
        self._edge_alive.append(True)
        self._num_alive_edges += 1
        self._append_adj(u, _AdjEntry(v, rel, float(t), index))
        self._append_adj(v, _AdjEntry(u, rel, float(t), index))
        self._last_time[u] = max(self._last_time[u], float(t))
        self._last_time[v] = max(self._last_time[v], float(t))
        self._degree[u] += 1
        self._degree[v] += 1
        return index

    def remove_edge(self, index: int) -> None:
        """Delete the edge at ``index`` (idempotent tombstone)."""
        if not 0 <= index < len(self._edge_u):
            raise IndexError(f"edge index {index} out of range")
        if not self._edge_alive[index]:
            return
        self._mutation_count += 1
        self._edge_alive[index] = False
        self._num_alive_edges -= 1
        for node in (self._edge_u[index], self._edge_v[index]):
            self._adj[node] = [e for e in self._adj[node] if e.index != index]
            self._degree[node] = max(0, self._degree[node] - 1)

    def _append_adj(self, node: int, entry: _AdjEntry) -> None:
        lst = self._adj[node]
        lst.append(entry)
        if self.max_neighbors is not None and len(lst) > self.max_neighbors:
            # Recency cap: forget the oldest inserted incident edge.  The
            # edge stays in the global store (it still exists historically)
            # but is no longer traversable from this node.
            del lst[0]

    @property
    def num_edges(self) -> int:
        """Number of live (non-deleted) edges."""
        return self._num_alive_edges

    def edge_at(self, index: int) -> TemporalEdge:
        """The edge stored at ``index`` (alive or tombstoned)."""
        return TemporalEdge(
            self._edge_u[index],
            self._edge_v[index],
            self._edge_rel[index],
            self._edge_t[index],
            index,
        )

    def edge_alive(self, index: int) -> bool:
        return self._edge_alive[index]

    def edges(self) -> Iterator[TemporalEdge]:
        """Iterate over live edges in insertion order."""
        for i in range(len(self._edge_u)):
            if self._edge_alive[i]:
                yield self.edge_at(i)

    # -------------------------------------------------------------- neighbours

    def neighbors(
        self,
        node: int,
        edge_types: Optional[Sequence[str]] = None,
        node_type: Optional[str] = None,
        now: Optional[float] = None,
        within: Optional[float] = None,
    ) -> List[Tuple[int, int, float, int]]:
        """Traversable neighbours of ``node`` as ``(other, rel_id, t, edge_index)``.

        Filters, all optional: ``edge_types`` restricts the connecting edge
        type (a multiplex metapath's ``R_j`` set); ``node_type`` restricts
        the neighbour's type (the metapath's ``o_{i+1}``); ``now``/``within``
        keep only edges with ``now - t <= within``, the propagation
        termination window ``tau`` of Eq. 9.
        """
        self._check_node(node)
        rel_ids = None
        if edge_types is not None:
            rel_ids = {self.schema.edge_type_id(r) for r in edge_types}
        type_id = None
        if node_type is not None:
            type_id = self.schema.node_type_id(node_type)
        out = []
        for entry in self._adj[node]:
            if rel_ids is not None and entry.rel not in rel_ids:
                continue
            if type_id is not None and self._node_types[entry.other] != type_id:
                continue
            if within is not None:
                reference = self._last_time[node] if now is None else now
                if reference - entry.t > within:
                    continue
            out.append((entry.other, entry.rel, entry.t, entry.index))
        return out

    def neighbors_ids(self, node, rel_ids=None, type_id=None):
        """Fast id-level neighbour query used by the walk hot path.

        Like :meth:`neighbors` but takes an edge-type-id set and a
        node-type id directly (no name lookups) and returns the raw
        adjacency entries ``(other, rel, t, index)``.
        """
        node_types = self._node_types
        out = []
        for entry in self._adj[node]:
            if rel_ids is not None and entry.rel not in rel_ids:
                continue
            if type_id is not None and node_types[entry.other] != type_id:
                continue
            out.append(entry)
        return out

    def degree(self, node: int) -> int:
        """Number of live incident edges of ``node`` (before the recency cap)."""
        self._check_node(node)
        return self._degree[node]

    def degrees(self) -> np.ndarray:
        """Degree of every node, indexed by node id."""
        return np.asarray(self._degree, dtype=np.int64)

    def last_interaction_time(self, node: int) -> float:
        """Timestamp ``t'_i`` of the latest interaction involving ``node``.

        ``-inf`` when the node has never interacted; callers clamp the
        active interval ``Delta_V`` accordingly.
        """
        self._check_node(node)
        return self._last_time[node]

    def last_interaction_times(self, nodes: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`last_interaction_time` over ``nodes``."""
        return np.asarray([self._last_time[n] for n in nodes], dtype=np.float64)

    # ---------------------------------------------------------------- views

    def snapshot_until(self, t: float, max_neighbors: Optional[int] = None) -> "DMHG":
        """A new graph containing the same nodes and live edges with ``t' <= t``.

        Static baselines train on such snapshots in the dynamic
        link-prediction protocol (Section IV-E).
        """
        g = DMHG(self.schema, max_neighbors=max_neighbors)
        for type_id in self._node_types:
            g.add_node(self.schema.node_types[type_id])
        for e in self.edges():
            if e.t <= t:
                g.add_edge(e.u, e.v, self.schema.edge_types[e.rel], e.t)
        return g

    def copy(self, max_neighbors: Optional[int] = None) -> "DMHG":
        """Deep copy, optionally changing the recency cap."""
        return self.snapshot_until(np.inf, max_neighbors=max_neighbors)

    def traversable_edge_indices(self) -> List[int]:
        """Indices of edges still reachable from some adjacency list.

        Under a recency cap, old incident edges fall out of nodes'
        neighbour lists; this returns the surviving "most recent
        subgraph" (the data a memory-constrained platform actually
        retains), sorted by insertion order.
        """
        seen = set()
        for entries in self._adj:
            for entry in entries:
                seen.add(entry.index)
        return sorted(seen)

    def timestamps(self) -> np.ndarray:
        """Timestamps of live edges in insertion order."""
        alive = np.asarray(self._edge_alive, dtype=bool)
        return np.asarray(self._edge_t, dtype=np.float64)[alive]

    def statistics(self) -> Dict[str, int]:
        """|V|, |E|, |O|, |R|, |T| as in the paper's Table III."""
        ts = self.timestamps()
        return {
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|O|": self.schema.num_node_types,
            "|R|": self.schema.num_edge_types,
            "|T|": int(np.unique(ts).size) if ts.size else 0,
        }

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._node_types):
            raise IndexError(f"node {node} out of range (num_nodes={self.num_nodes})")

    def __repr__(self) -> str:
        return (
            f"DMHG(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"|O|={self.schema.num_node_types}, |R|={self.schema.num_edge_types}, "
            f"max_neighbors={self.max_neighbors})"
        )
