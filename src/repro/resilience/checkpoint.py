"""Atomic, CRC-verified checkpoints of the online learning state.

A checkpoint captures everything :func:`repro.resilience.recovery.recover`
needs to resume bitwise-identically, keyed to the write-ahead log by the
WAL sequence number it covers:

* ``seq`` — the last WAL record reflected in this snapshot;
* ``model_state`` — ``SUPA.state_dict()`` (memory + optimizer arrays);
* ``model_rng_state`` / ``trainer_rng_state`` — the exact PCG64 states
  of the model's sampling RNG and the trainer's validation RNG;
* ``clock`` / ``updates_applied`` — the service's stream watermark and
  progress counter;
* ``residue`` — the queue's accepted-but-not-yet-trained tail, kept for
  cross-checking against the WAL prefix during recovery.

On-disk layout: one JSON header line (``{"crc": ..., "meta": {...}}``)
followed by an ``np.savez`` archive of the flattened state arrays.  The
header carries the payload's byte length and CRC-32, and is itself
CRC-protected, so *any* truncation or bit-flip is detected and surfaces
as :class:`CheckpointError` — which :meth:`CheckpointManager.latest`
treats as "fall back to the next-older file".

Writes are atomic: serialize to ``<name>.tmp``, ``fsync``, then
``os.replace`` — a crash mid-write can never damage an existing
checkpoint.
"""

from __future__ import annotations

import io
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.streams import StreamEdge

#: bump when the on-disk layout changes incompatibly
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file failed its structural or CRC integrity checks."""


@dataclass
class Checkpoint:
    """One recoverable snapshot of the serving/learning state."""

    seq: int
    updates_applied: int
    clock: float
    residue: List[StreamEdge]
    model_state: Dict[str, object]
    model_rng_state: Dict[str, object]
    trainer_rng_state: Dict[str, object]
    #: node-universe size, cross-checked at recovery time
    num_nodes: int = 0


def _flatten(state: Dict[str, object], prefix: str, out: Dict[str, np.ndarray]) -> None:
    for key in sorted(state):
        value = state[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            _flatten(value, name + ".", out)
        elif isinstance(value, np.ndarray):
            out[name] = value
        else:
            raise CheckpointError(
                f"unsupported state leaf {name!r} of type {type(value).__name__}; "
                "state_dict leaves must be numpy arrays"
            )


def _unflatten(flat: Dict[str, np.ndarray]) -> Dict[str, object]:
    nested: Dict[str, object] = {}
    for name, value in flat.items():
        parts = name.split(".")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return nested


def serialize(ckpt: Checkpoint) -> bytes:
    """Header line + npz payload; inverse of :func:`deserialize`."""
    flat: Dict[str, np.ndarray] = {}
    _flatten(ckpt.model_state, "", flat)
    buffer = io.BytesIO()
    np.savez(buffer, **flat)
    payload = buffer.getvalue()
    meta = {
        "format": FORMAT_VERSION,
        "seq": int(ckpt.seq),
        "updates_applied": int(ckpt.updates_applied),
        "clock": float(ckpt.clock),
        "num_nodes": int(ckpt.num_nodes),
        "residue": [
            [int(e.u), int(e.v), str(e.edge_type), float(e.t)] for e in ckpt.residue
        ],
        "model_rng_state": ckpt.model_rng_state,
        "trainer_rng_state": ckpt.trainer_rng_state,
        "payload_bytes": len(payload),
        "payload_crc": zlib.crc32(payload) & 0xFFFFFFFF,
    }
    canonical = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    header = json.dumps(
        {"crc": zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "meta": meta},
        sort_keys=True,
        separators=(",", ":"),
    )
    return header.encode("utf-8") + b"\n" + payload


def deserialize(data: bytes) -> Checkpoint:
    """Parse + verify one serialized checkpoint (:class:`CheckpointError`
    on any corruption)."""
    newline = data.find(b"\n")
    if newline < 0:
        raise CheckpointError("missing checkpoint header line")
    try:
        wrapper = json.loads(data[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"unparsable checkpoint header: {exc}") from exc
    if not isinstance(wrapper, dict) or "meta" not in wrapper or "crc" not in wrapper:
        raise CheckpointError("malformed checkpoint header")
    meta = wrapper["meta"]
    canonical = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    if wrapper["crc"] != zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF:
        raise CheckpointError("checkpoint header failed its CRC check")
    if meta.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format {meta.get('format')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    payload = data[newline + 1 :]
    if len(payload) != meta["payload_bytes"]:
        raise CheckpointError(
            f"truncated checkpoint payload ({len(payload)} of "
            f"{meta['payload_bytes']} bytes)"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != meta["payload_crc"]:
        raise CheckpointError("checkpoint payload failed its CRC check")
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            flat = {name: archive[name] for name in archive.files}
    except (ValueError, OSError) as exc:
        raise CheckpointError(f"unreadable checkpoint payload: {exc}") from exc
    return Checkpoint(
        seq=int(meta["seq"]),
        updates_applied=int(meta["updates_applied"]),
        clock=float(meta["clock"]),
        residue=[
            StreamEdge(int(u), int(v), str(et), float(t))
            for u, v, et, t in meta["residue"]
        ],
        model_state=_unflatten(flat),
        model_rng_state=meta["model_rng_state"],
        trainer_rng_state=meta["trainer_rng_state"],
        num_nodes=int(meta.get("num_nodes", 0)),
    )


class CheckpointManager:
    """Atomic writes + retention + corruption fallback over a directory.

    Files are named ``ckpt-<seq:012d>.ckpt`` so lexicographic order is
    recency order; :meth:`latest` walks newest-first and silently falls
    back past corrupt files (counting them on ``checkpoint.fallbacks``).
    """

    SUFFIX = ".ckpt"

    def __init__(self, directory: str, retain: int = 3, metrics=None):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.retain = retain
        self._metrics = metrics
        # Guards the write/fallback tallies only; file I/O stays outside
        # (atomicity there comes from the tmp-then-replace protocol).
        self._lock = threading.Lock()
        self.writes = 0
        self.fallbacks = 0

    def paths(self) -> List[str]:
        """Checkpoint files, newest (highest seq) first."""
        names = sorted(
            (
                name
                for name in os.listdir(self.directory)
                if name.startswith("ckpt-") and name.endswith(self.SUFFIX)
            ),
            reverse=True,
        )
        return [os.path.join(self.directory, name) for name in names]

    def save(self, ckpt: Checkpoint) -> str:
        """Atomically persist ``ckpt``; prunes past ``retain``; returns path."""
        data = serialize(ckpt)
        final = os.path.join(self.directory, f"ckpt-{ckpt.seq:012d}{self.SUFFIX}")
        tmp = final + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        with self._lock:
            self.writes += 1
        if self._metrics is not None:
            self._metrics.counter("checkpoint.writes").inc()
        self.prune()
        return final

    def prune(self) -> None:
        """Drop everything older than the newest ``retain`` checkpoints."""
        for stale in self.paths()[self.retain :]:
            os.remove(stale)

    def load(self, path: str) -> Checkpoint:
        """Read + verify one checkpoint file."""
        with open(path, "rb") as fh:
            return deserialize(fh.read())

    def latest(self) -> Optional[Checkpoint]:
        """Newest checkpoint passing integrity checks; ``None`` if none do.

        Corrupt or unreadable files are skipped (not deleted) so the
        fallback chain stays inspectable.
        """
        for path in self.paths():
            try:
                return self.load(path)
            except (CheckpointError, OSError):
                with self._lock:
                    self.fallbacks += 1
                if self._metrics is not None:
                    self._metrics.counter("checkpoint.fallbacks").inc()
        return None
