"""repro.resilience: durability and fault tolerance for the serving layer.

Four pieces, composing into crash recovery with bitwise parity:

* :mod:`~repro.resilience.wal` — an append-only, CRC-checksummed,
  segment-rotated write-ahead log of every
  :class:`~repro.serve.ingest.EventQueue` decision (accept / evict /
  batch, plus replication heartbeats), tolerant of torn tails, with a
  :class:`WalTailer` for live follow reads against a concurrent writer;
* :mod:`~repro.resilience.checkpoint` — atomic (write-temp + rename)
  snapshots of the full learned state: ``SUPA.state_dict()``, both RNG
  streams, the queue residue and the WAL position;
* :mod:`~repro.resilience.recovery` — :func:`recover` rebuilds a
  service from the newest valid checkpoint plus a WAL-suffix replay,
  **bitwise identical** to a run that never crashed;
* :mod:`~repro.resilience.faults` — a seeded fault-injection plan and
  :class:`ChaosReplayDriver` that replays a dataset's stream while
  injecting malformed / late / duplicate / burst / crash faults, then
  reconciles every injected fault against what the system recorded.
"""

from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    ChaosReplayDriver,
    ChaosReport,
    Fault,
    FaultPlan,
)
from repro.resilience.recovery import (
    QueueLogState,
    RecoveryError,
    RecoveryResult,
    fold_queue_log,
    recover,
)
from repro.resilience.wal import (
    WalRecord,
    WalTailError,
    WalTailer,
    WriteAheadLog,
    iter_records,
    scan,
    segment_paths,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "FAULT_KINDS",
    "ChaosReplayDriver",
    "ChaosReport",
    "Fault",
    "FaultPlan",
    "QueueLogState",
    "RecoveryError",
    "RecoveryResult",
    "fold_queue_log",
    "recover",
    "WalRecord",
    "WalTailError",
    "WalTailer",
    "WriteAheadLog",
    "iter_records",
    "scan",
    "segment_paths",
]
