"""Append-only, CRC-checksummed write-ahead log of queue decisions.

Durability for the online learner comes from journaling the
:class:`~repro.serve.ingest.EventQueue`'s *decision log*, not its
outcome: every accepted event (``accept``), every ``drop_oldest``
eviction (``evict``) and every micro-batch hand-off (``batch``) is
appended **before** the corresponding state change happens.  Replaying
the log therefore reconstructs the exact FIFO evolution of the queue —
including the exact micro-batch boundaries the trainer saw — which is
what makes crash recovery (:mod:`repro.resilience.recovery`) bitwise
identical to an uninterrupted run.

The log doubles as a replication stream (:mod:`repro.replicate`): a
primary emits periodic ``heartbeat`` records carrying its clock so
followers tailing the log can both measure staleness and detect primary
silence.  Heartbeats are liveness metadata — they carry no queue
decision and every replayer skips them.

Admission control (:mod:`repro.serve.admission`) journals its denials
the same write-ahead way: a ``shed`` record for every event refused by
a load-shedding policy and a ``throttle`` record for every per-user
rate-limit rejection, each carrying the denied edge and the decision
``reason``.  Like heartbeats they change no queue state and every
replayer skips them — they exist so overload behaviour is *audited*:
:func:`decision_ledger` folds them back into per-reason counts that
reconciliation compares against the queue's deadletter ledger (zero
unjournaled drops).  ``evict`` records may carry a ``reason`` too,
distinguishing an admission-driven ``drop_head`` shed (which *is* a
queue-state change and must replay as an eviction) from a plain
``drop_oldest`` backpressure eviction.

Format: one JSON record per line, smallest-possible canonical encoding
(sorted keys, no whitespace) with a ``crc`` field holding the CRC-32 of
the canonical record body.  Sequence numbers are contiguous from 1; a
gap, a failed checksum or an unterminated final line marks the end of
the valid prefix.  A torn tail — the partially-flushed final record of
a crashed process — is *detected and dropped*, never fatal: opening the
log truncates it back to the valid prefix and appends from there.

Large logs rotate into Kafka-style segments: the root ``path`` is always
the oldest segment and rotation opens a side file named
``{path}.{first_seq:012d}`` — never a rename, so a concurrent tailer's
committed (segment, offset) position stays valid across rotations.

Timestamps survive the JSON round-trip bit-exactly: ``json`` emits the
shortest ``repr`` that parses back to the identical IEEE-754 double.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import IO, Dict, Iterator, List, Optional, Tuple

from repro.graph.streams import StreamEdge

#: record kinds a WAL may contain: queue decisions, liveness heartbeats
#: and admission-control denials (ledger-only; replayers skip them)
WAL_KINDS = ("accept", "evict", "batch", "heartbeat", "shed", "throttle")

#: kinds that carry no queue-state change: every replayer skips them
LEDGER_ONLY_KINDS = ("heartbeat", "shed", "throttle")

#: kinds that carry a denied/evicted edge payload
_EDGE_KINDS = ("accept", "evict", "shed", "throttle")

#: width of the zero-padded first-seq suffix in rotated segment names
_SEGMENT_SUFFIX_DIGITS = 12


@dataclass(frozen=True)
class WalRecord:
    """One journaled queue decision (or liveness heartbeat).

    ``edge`` is set for ``accept``/``evict``/``shed``/``throttle``
    records; ``count`` is the micro-batch size for ``batch`` records;
    ``t`` is the writer's clock reading for ``heartbeat`` records;
    ``reason`` is the admission decision category on ``shed``/
    ``throttle`` records (and, optionally, on admission-driven
    ``evict`` records).
    """

    seq: int
    kind: str
    edge: Optional[StreamEdge] = None
    count: int = 0
    t: float = 0.0
    reason: str = ""


@dataclass
class WalScan:
    """The valid prefix of a log plus what was dropped after it."""

    records: List[WalRecord] = field(default_factory=list)
    #: byte offset of the valid prefix *within* ``valid_path``
    valid_bytes: int = 0
    #: records after the valid prefix (torn tail / corruption), dropped
    dropped_records: int = 0
    #: highest sequence number in the valid prefix (0 = empty log)
    last_seq: int = 0
    #: segment file holding the end of the valid prefix (truncation target)
    valid_path: str = ""
    #: whole segment files past the valid prefix (removal targets)
    dropped_segments: List[str] = field(default_factory=list)


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _encode(record: WalRecord) -> bytes:
    body: dict = {"kind": record.kind, "seq": int(record.seq)}
    if record.edge is not None:
        body["u"] = int(record.edge.u)
        body["v"] = int(record.edge.v)
        body["et"] = str(record.edge.edge_type)
        body["t"] = float(record.edge.t)
    if record.kind == "batch":
        body["n"] = int(record.count)
    if record.kind == "heartbeat":
        body["t"] = float(record.t)
    if record.reason:
        body["why"] = str(record.reason)
    canonical = _canonical(body)
    crc = zlib.crc32(canonical) & 0xFFFFFFFF
    wrapped = dict(body)
    wrapped["crc"] = crc
    return _canonical(wrapped) + b"\n"


def _decode(line: bytes) -> Optional[WalRecord]:
    """Parse one journal line; ``None`` for anything invalid."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or "crc" not in payload:
        return None
    crc = payload.pop("crc")
    if crc != zlib.crc32(_canonical(payload)) & 0xFFFFFFFF:
        return None
    kind = payload.get("kind")
    seq = payload.get("seq")
    if kind not in WAL_KINDS or not isinstance(seq, int) or seq < 1:
        return None
    edge: Optional[StreamEdge] = None
    count = 0
    stamp = 0.0
    reason = payload.get("why", "")
    if not isinstance(reason, str):
        return None
    if kind in _EDGE_KINDS:
        try:
            edge = StreamEdge(
                int(payload["u"]),
                int(payload["v"]),
                str(payload["et"]),
                float(payload["t"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
    elif kind == "batch":
        count = payload.get("n")
        if not isinstance(count, int) or count < 1:
            return None
    else:  # heartbeat
        raw = payload.get("t")
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            return None
        stamp = float(raw)
    return WalRecord(
        seq=seq, kind=kind, edge=edge, count=count, t=stamp, reason=reason
    )


def segment_paths(path: str) -> List[str]:
    """On-disk segment files of the log rooted at ``path``, oldest first.

    A non-rotating log is the single file ``path``.  Rotation adds side
    files ``{path}.{first_seq:012d}``; the plain file, when present, is
    always the oldest segment because rotation never renames it.
    """
    out: List[str] = []
    if os.path.exists(path):
        out.append(path)
    parent = os.path.dirname(path) or "."
    base = os.path.basename(path)
    if os.path.isdir(parent):
        numbered: List[Tuple[int, str]] = []
        prefix = base + "."
        for name in os.listdir(parent):
            if not name.startswith(prefix):
                continue
            suffix = name[len(prefix):]
            if len(suffix) == _SEGMENT_SUFFIX_DIGITS and suffix.isdigit():
                numbered.append((int(suffix), f"{path}.{suffix}"))
        numbered.sort()
        out.extend(seg for _, seg in numbered)
    return out


def _segment_start(path: str, segment: str) -> int:
    """First sequence number a segment file is named to contain."""
    if segment == path:
        return 1
    return int(segment[len(path) + 1:])


def _count_lines(data: bytes) -> int:
    return sum(1 for piece in data.split(b"\n") if piece)


def iter_records(path: str, from_seq: int = 1) -> Iterator[WalRecord]:
    """Stream the valid record prefix of ``path`` from ``from_seq`` on.

    Unlike :func:`scan` this never materialises the log: records are
    decoded one line at a time across all segments, and segments whose
    name proves they end before ``from_seq`` are skipped without being
    read.  Iteration ends at the first torn/invalid/out-of-sequence
    line — the same valid-prefix contract as :func:`scan`.
    """
    from_seq = max(1, int(from_seq))
    segments = segment_paths(path)
    if not segments:
        return
    # seek: start at the newest segment whose first seq is <= from_seq
    start_index = 0
    for index, segment in enumerate(segments):
        if _segment_start(path, segment) <= from_seq:
            start_index = index
    expected = _segment_start(path, segments[start_index])
    for segment in segments[start_index:]:
        if _segment_start(path, segment) != expected:
            return  # gap between segments: valid prefix ends here
        with open(segment, "rb") as fh:
            while True:
                line = fh.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    return  # torn tail at true EOF
                record = _decode(line[:-1])
                if record is None or record.seq != expected:
                    return
                expected += 1
                if record.seq >= from_seq:
                    yield record


def scan(path: str, collect_records: bool = True) -> WalScan:
    """Read the valid record prefix of ``path`` (missing file: empty).

    Scanning stops at the first unterminated, unparsable, checksum-
    failing or out-of-sequence line; everything from there on counts as
    dropped.  This is the torn-tail tolerance contract: a crash mid-
    append loses at most the record being written, never the log.

    With ``collect_records=False`` the log is still fully validated
    (``last_seq``/``valid_bytes``/``dropped_records`` are exact) but the
    record list stays empty — use :func:`iter_records` to stream the
    contents without holding them all in memory.
    """
    result = WalScan(valid_path=path)
    segments = segment_paths(path)
    if not segments:
        return result
    expected_seq = 1
    stopped = False
    for segment in segments:
        if not stopped and _segment_start(path, segment) != expected_seq:
            stopped = True  # gap between segments: prefix ended earlier
        if stopped:
            result.dropped_segments.append(segment)
            with open(segment, "rb") as fh:
                result.dropped_records += _count_lines(fh.read())
            continue
        result.valid_path = segment
        result.valid_bytes = 0
        with open(segment, "rb") as fh:
            while True:
                line = fh.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    result.dropped_records += 1  # unterminated final record
                    stopped = True
                    break
                record = _decode(line[:-1])
                if record is None or record.seq != expected_seq:
                    if line[:-1]:
                        result.dropped_records += 1
                    result.dropped_records += _count_lines(fh.read())
                    stopped = True
                    break
                if collect_records:
                    result.records.append(record)
                result.last_seq = record.seq
                expected_seq += 1
                result.valid_bytes = fh.tell()
    return result


def decision_ledger(path: str) -> Dict[str, Dict[str, int]]:
    """Per-reason counts of journaled admission decisions in ``path``.

    Returns ``{kind: {reason: count}}`` for ``shed`` and ``throttle``
    records plus ``evict`` records that carry a reason (a ``drop_head``
    shed journals as an eviction so replay pops the head, but its
    reason keeps it auditable here).  Plain backpressure evictions
    (empty reason) are not admission decisions and are excluded.
    Streams the log; never materialises it.
    """
    ledger: Dict[str, Dict[str, int]] = {"shed": {}, "throttle": {}, "evict": {}}
    for record in iter_records(path):
        if record.kind in ("shed", "throttle"):
            bucket = ledger[record.kind]
        elif record.kind == "evict" and record.reason:
            bucket = ledger["evict"]
        else:
            continue
        bucket[record.reason] = bucket.get(record.reason, 0) + 1
    return ledger


class WriteAheadLog:
    """Appender over one journal, self-repairing on open.

    Parameters
    ----------
    path:
        Journal root; parent directories are created, existing segments
        are scanned and truncated back to their valid prefix so appends
        continue the sequence.
    fsync:
        ``True`` forces an ``os.fsync`` after every append (durability
        against OS crash, not just process crash).  Default off: the
        per-record flush already survives process death.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; appends
        increment ``wal.appends`` and a repaired torn tail increments
        ``wal.torn_records_dropped``.
    segment_bytes:
        When set, an append that leaves the active segment at or above
        this size rotates to a fresh segment named by the next sequence
        number.  ``None`` (default) keeps the single-file layout.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        metrics=None,
        segment_bytes: Optional[int] = None,
    ):
        if segment_bytes is not None and segment_bytes < 1:
            raise ValueError(
                f"segment_bytes must be >= 1 when set, got {segment_bytes}"
            )
        self.path = path
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self._metrics = metrics
        # Guards the file handle, the sequence counter and the active-
        # segment bookkeeping: one append = one contiguous seq + one
        # uninterleaved record line in exactly one segment.
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        recovered = scan(path, collect_records=False)
        self.last_seq = recovered.last_seq
        self.torn_records_dropped = recovered.dropped_records
        if (
            os.path.exists(recovered.valid_path)
            and recovered.valid_bytes < os.path.getsize(recovered.valid_path)
        ):
            with open(recovered.valid_path, "r+b") as fh:
                fh.truncate(recovered.valid_bytes)
        for stale in recovered.dropped_segments:
            os.remove(stale)
        if metrics is not None and self.torn_records_dropped:
            metrics.counter("wal.torn_records_dropped").inc(
                self.torn_records_dropped
            )
        self._active_path = recovered.valid_path
        self._active_bytes = recovered.valid_bytes
        self._fh: Optional[IO[bytes]] = open(self._active_path, "ab")

    # ------------------------------------------------------------- appending

    def append_accept(self, edge: StreamEdge) -> WalRecord:
        """Journal one accepted event (call *before* buffering it)."""
        return self._append("accept", edge=edge)

    def append_evict(self, edge: StreamEdge, reason: str = "") -> WalRecord:
        """Journal an eviction (call *before* popping the queue head).

        ``reason`` distinguishes an admission-driven ``drop_head`` shed
        from a plain backpressure ``drop_oldest``; replay treats both
        identically (the head pops), the ledger does not.
        """
        return self._append("evict", edge=edge, reason=reason)

    def append_shed(self, edge: StreamEdge, reason: str) -> WalRecord:
        """Journal a load-shedding denial (ledger-only; never replayed)."""
        if not reason:
            raise ValueError("shed records require a non-empty reason")
        return self._append("shed", edge=edge, reason=reason)

    def append_throttle(self, edge: StreamEdge, reason: str) -> WalRecord:
        """Journal a rate-limit denial (ledger-only; never replayed)."""
        if not reason:
            raise ValueError("throttle records require a non-empty reason")
        return self._append("throttle", edge=edge, reason=reason)

    def append_batch(self, count: int) -> WalRecord:
        """Journal a micro-batch hand-off of ``count`` buffered events."""
        if count < 1:
            raise ValueError(f"batch count must be >= 1, got {count}")
        return self._append("batch", count=count)

    def append_heartbeat(self, t: float) -> WalRecord:
        """Journal a liveness heartbeat stamped with the writer's clock."""
        return self._append("heartbeat", t=float(t))

    def _append(
        self,
        kind: str,
        edge: Optional[StreamEdge] = None,
        count: int = 0,
        t: float = 0.0,
        reason: str = "",
    ) -> WalRecord:
        with self._lock:
            if self._fh is None:
                raise ValueError("write-ahead log is closed")
            record = WalRecord(self.last_seq + 1, kind, edge, count, t, reason)
            # Writing under the lock IS the durability contract: the
            # contiguous-seq invariant requires assigning the sequence
            # number and emitting its record as one atomic step.  The
            # write is an append to a local file — bounded, no network.
            payload = _encode(record)
            self._fh.write(payload)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())  # reprolint: disable=hold-and-call
            self.last_seq = record.seq
            self._active_bytes += len(payload)
            if (
                self.segment_bytes is not None
                and self._active_bytes >= self.segment_bytes
            ):
                # Rotation must be atomic with the sequence counter: the
                # new segment's name claims the *next* seq, so no append
                # may slip in between sizing the old file and opening
                # the new one.  Both are bounded local-file operations.
                self._fh.close()
                next_path = (
                    f"{self.path}."
                    f"{self.last_seq + 1:0{_SEGMENT_SUFFIX_DIGITS}d}"
                )
                self._fh = open(next_path, "ab")  # reprolint: disable=hold-and-call
                self._active_path = next_path
                self._active_bytes = 0
        if self._metrics is not None:
            self._metrics.counter("wal.appends").inc()
            self._metrics.counter("wal.bytes_appended").inc(len(payload))
        return record

    # ------------------------------------------------------------- lifecycle

    @property
    def active_path(self) -> str:
        """Segment file currently receiving appends."""
        with self._lock:
            return self._active_path

    def segments(self) -> List[str]:
        """All on-disk segments of this log, oldest first."""
        return segment_paths(self.path)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._fh is None

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class WalTailError(RuntimeError):
    """The tailed log contradicts itself (sequence gap or corruption)."""


class WalTailer:
    """Incremental reader over a WAL a live writer may still be appending.

    Each :meth:`poll` re-opens the log at the last *committed*
    (segment, offset) position and returns every complete, valid record
    appended since.  The committed position only ever advances past
    fully-validated records, which makes the tailer safe against the
    writer's crash-repair truncation: a recovering
    :class:`WriteAheadLog` truncates only the *invalid* suffix, and the
    tailer never committed into it — an unterminated or missing tail is
    reported as "pending" (empty poll) and simply retried.

    A torn tail at true EOF is therefore *pending*, while a terminated-
    but-invalid line or a sequence gap is real corruption and raises
    :class:`WalTailError`.

    Single-consumer: one thread drives :meth:`poll`; the lock makes the
    position and tallies safely readable from other threads (lag
    probes, metrics scrapes).
    """

    def __init__(self, path: str, from_seq: int = 1, metrics=None):
        self.path = path
        self._metrics = metrics
        # Guards the committed read position and tallies so lag probes
        # from other threads see a consistent (segment, offset, seq).
        self._lock = threading.Lock()
        self._next_seq = max(1, int(from_seq))
        self._segment: Optional[str] = None
        self._offset = 0
        self._bytes_read = 0
        self._records_read = 0
        self._backlog_bytes = 0

    # --------------------------------------------------------------- polling

    def poll(self, max_records: Optional[int] = None) -> List[WalRecord]:
        """Return records appended since the last poll (may be empty).

        An empty list means "nothing complete yet" — either the writer
        is idle or its final record is still being flushed.  I/O runs
        outside the lock; the committed position is updated only after
        the read succeeds, so a raising poll leaves the tailer where it
        was.
        """
        with self._lock:
            segment, offset, next_seq = self._segment, self._offset, self._next_seq
        records, segment, offset, next_seq, consumed = self._read(
            segment, offset, next_seq, max_records
        )
        backlog = self._measure_backlog(segment, offset)
        with self._lock:
            self._segment = segment
            self._offset = offset
            self._next_seq = next_seq
            self._bytes_read += consumed
            self._records_read += len(records)
            self._backlog_bytes = backlog
        if self._metrics is not None and records:
            self._metrics.counter("wal.tail_records").inc(len(records))
            self._metrics.counter("wal.tail_bytes").inc(consumed)
        return records

    def _read(
        self,
        segment: Optional[str],
        offset: int,
        next_seq: int,
        max_records: Optional[int],
    ) -> Tuple[List[WalRecord], Optional[str], int, int, int]:
        """Read from a committed position; returns the advanced position."""
        records: List[WalRecord] = []
        consumed = 0
        segments = segment_paths(self.path)
        if not segments:
            if segment is not None:
                raise WalTailError(
                    f"tailed log {self.path!r} vanished after seq {next_seq - 1}"
                )
            return records, segment, offset, next_seq, consumed
        if segment is None:
            # first poll: start at the newest segment named <= next_seq
            index = 0
            for i, candidate in enumerate(segments):
                if _segment_start(self.path, candidate) <= next_seq:
                    index = i
            segment, offset = segments[index], 0
        elif segment not in segments:
            raise WalTailError(
                f"committed segment {segment!r} vanished from {self.path!r}"
            )
        else:
            index = segments.index(segment)
        while True:
            with open(segment, "rb") as fh:
                fh.seek(offset)
                advance = False
                while True:
                    if max_records is not None and len(records) >= max_records:
                        return records, segment, offset, next_seq, consumed
                    line = fh.readline()
                    if not line:
                        advance = True  # true EOF of this segment
                        break
                    if not line.endswith(b"\n"):
                        # live writer's partial flush, or a crashed
                        # writer's torn tail: pending either way —
                        # retry from the same committed offset
                        return records, segment, offset, next_seq, consumed
                    record = _decode(line[:-1])
                    if record is None:
                        raise WalTailError(
                            f"corrupt record after seq {next_seq - 1} "
                            f"in {segment!r}"
                        )
                    if record.seq < next_seq:
                        offset = fh.tell()  # before our start: skip
                        continue
                    if record.seq > next_seq:
                        raise WalTailError(
                            f"sequence gap: expected {next_seq}, "
                            f"found {record.seq} in {segment!r}"
                        )
                    records.append(record)
                    consumed += len(line)
                    next_seq += 1
                    offset = fh.tell()
            if not advance or index >= len(segments) - 1:
                return records, segment, offset, next_seq, consumed
            index += 1
            segment, offset = segments[index], 0

    def _measure_backlog(self, segment: Optional[str], offset: int) -> int:
        """Bytes on disk past the committed position (shipping backlog)."""
        total = 0
        seen_current = segment is None
        for candidate in segment_paths(self.path):
            try:
                size = os.path.getsize(candidate)
            except OSError:
                continue
            if candidate == segment:
                seen_current = True
                total += max(0, size - offset)
            elif seen_current:
                total += size
        return total

    # ------------------------------------------------------------ inspection

    @property
    def committed_seq(self) -> int:
        """Highest sequence number returned by :meth:`poll` so far."""
        with self._lock:
            return self._next_seq - 1

    @property
    def bytes_read(self) -> int:
        """Payload bytes consumed (committed records only)."""
        with self._lock:
            return self._bytes_read

    @property
    def records_read(self) -> int:
        with self._lock:
            return self._records_read

    @property
    def backlog_bytes(self) -> int:
        """On-disk bytes past the committed position at the last poll."""
        with self._lock:
            return self._backlog_bytes
