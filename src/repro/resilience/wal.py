"""Append-only, CRC-checksummed write-ahead log of queue decisions.

Durability for the online learner comes from journaling the
:class:`~repro.serve.ingest.EventQueue`'s *decision log*, not its
outcome: every accepted event (``accept``), every ``drop_oldest``
eviction (``evict``) and every micro-batch hand-off (``batch``) is
appended **before** the corresponding state change happens.  Replaying
the log therefore reconstructs the exact FIFO evolution of the queue —
including the exact micro-batch boundaries the trainer saw — which is
what makes crash recovery (:mod:`repro.resilience.recovery`) bitwise
identical to an uninterrupted run.

Format: one JSON record per line, smallest-possible canonical encoding
(sorted keys, no whitespace) with a ``crc`` field holding the CRC-32 of
the canonical record body.  Sequence numbers are contiguous from 1; a
gap, a failed checksum or an unterminated final line marks the end of
the valid prefix.  A torn tail — the partially-flushed final record of
a crashed process — is *detected and dropped*, never fatal: opening the
log truncates it back to the valid prefix and appends from there.

Timestamps survive the JSON round-trip bit-exactly: ``json`` emits the
shortest ``repr`` that parses back to the identical IEEE-754 double.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import IO, List, Optional

from repro.graph.streams import StreamEdge

#: record kinds a WAL may contain, in the queue's own vocabulary
WAL_KINDS = ("accept", "evict", "batch")


@dataclass(frozen=True)
class WalRecord:
    """One journaled queue decision.

    ``edge`` is set for ``accept``/``evict`` records; ``count`` is the
    micro-batch size for ``batch`` records.
    """

    seq: int
    kind: str
    edge: Optional[StreamEdge] = None
    count: int = 0


@dataclass
class WalScan:
    """The valid prefix of a log file plus what was dropped after it."""

    records: List[WalRecord] = field(default_factory=list)
    #: byte length of the valid prefix (truncation point for repair)
    valid_bytes: int = 0
    #: records after the valid prefix (torn tail / corruption), dropped
    dropped_records: int = 0

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _encode(record: WalRecord) -> bytes:
    body: dict = {"kind": record.kind, "seq": int(record.seq)}
    if record.edge is not None:
        body["u"] = int(record.edge.u)
        body["v"] = int(record.edge.v)
        body["et"] = str(record.edge.edge_type)
        body["t"] = float(record.edge.t)
    if record.kind == "batch":
        body["n"] = int(record.count)
    canonical = _canonical(body)
    crc = zlib.crc32(canonical) & 0xFFFFFFFF
    wrapped = dict(body)
    wrapped["crc"] = crc
    return _canonical(wrapped) + b"\n"


def _decode(line: bytes) -> Optional[WalRecord]:
    """Parse one journal line; ``None`` for anything invalid."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or "crc" not in payload:
        return None
    crc = payload.pop("crc")
    if crc != zlib.crc32(_canonical(payload)) & 0xFFFFFFFF:
        return None
    kind = payload.get("kind")
    seq = payload.get("seq")
    if kind not in WAL_KINDS or not isinstance(seq, int) or seq < 1:
        return None
    edge: Optional[StreamEdge] = None
    count = 0
    if kind in ("accept", "evict"):
        try:
            edge = StreamEdge(
                int(payload["u"]),
                int(payload["v"]),
                str(payload["et"]),
                float(payload["t"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
    else:
        count = payload.get("n")
        if not isinstance(count, int) or count < 1:
            return None
    return WalRecord(seq=seq, kind=kind, edge=edge, count=count)


def scan(path: str) -> WalScan:
    """Read the valid record prefix of ``path`` (missing file: empty).

    Scanning stops at the first unterminated, unparsable, checksum-
    failing or out-of-sequence line; everything from there on counts as
    dropped.  This is the torn-tail tolerance contract: a crash mid-
    append loses at most the record being written, never the log.
    """
    result = WalScan()
    if not os.path.exists(path):
        return result
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    expected_seq = 1
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            result.dropped_records += 1  # unterminated final record
            break
        record = _decode(data[offset:newline])
        if record is None or record.seq != expected_seq:
            result.dropped_records += sum(
                1 for piece in data[offset:].split(b"\n") if piece
            )
            break
        result.records.append(record)
        expected_seq += 1
        offset = newline + 1
        result.valid_bytes = offset
    return result


class WriteAheadLog:
    """Appender over one journal file, self-repairing on open.

    Parameters
    ----------
    path:
        Journal file; parent directories are created, an existing file
        is scanned and truncated back to its valid prefix so appends
        continue the sequence.
    fsync:
        ``True`` forces an ``os.fsync`` after every append (durability
        against OS crash, not just process crash).  Default off: the
        per-record flush already survives process death.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; appends
        increment ``wal.appends`` and a repaired torn tail increments
        ``wal.torn_records_dropped``.
    """

    def __init__(self, path: str, fsync: bool = False, metrics=None):
        self.path = path
        self.fsync = fsync
        self._metrics = metrics
        # Guards the file handle and the sequence counter: one append =
        # one contiguous seq + one uninterleaved record line.
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        recovered = scan(path)
        self.last_seq = recovered.last_seq
        self.torn_records_dropped = recovered.dropped_records
        if os.path.exists(path) and recovered.valid_bytes < os.path.getsize(path):
            with open(path, "r+b") as fh:
                fh.truncate(recovered.valid_bytes)
        if metrics is not None and self.torn_records_dropped:
            metrics.counter("wal.torn_records_dropped").inc(
                self.torn_records_dropped
            )
        self._fh: Optional[IO[bytes]] = open(path, "ab")

    # ------------------------------------------------------------- appending

    def append_accept(self, edge: StreamEdge) -> WalRecord:
        """Journal one accepted event (call *before* buffering it)."""
        return self._append("accept", edge=edge)

    def append_evict(self, edge: StreamEdge) -> WalRecord:
        """Journal a ``drop_oldest`` eviction (call *before* popping)."""
        return self._append("evict", edge=edge)

    def append_batch(self, count: int) -> WalRecord:
        """Journal a micro-batch hand-off of ``count`` buffered events."""
        if count < 1:
            raise ValueError(f"batch count must be >= 1, got {count}")
        return self._append("batch", count=count)

    def _append(
        self, kind: str, edge: Optional[StreamEdge] = None, count: int = 0
    ) -> WalRecord:
        with self._lock:
            if self._fh is None:
                raise ValueError("write-ahead log is closed")
            record = WalRecord(self.last_seq + 1, kind, edge, count)
            # Writing under the lock IS the durability contract: the
            # contiguous-seq invariant requires assigning the sequence
            # number and emitting its record as one atomic step.  The
            # write is an append to a local file — bounded, no network.
            self._fh.write(_encode(record))
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())  # reprolint: disable=hold-and-call
            self.last_seq = record.seq
        if self._metrics is not None:
            self._metrics.counter("wal.appends").inc()
        return record

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._fh is None

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
