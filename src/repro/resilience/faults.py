"""Seeded fault injection: the deterministic chaos replay harness.

A :class:`FaultPlan` schedules faults at stream positions drawn from a
:mod:`repro.utils.rng` generator, so a (dataset, seed) pair always
produces the same chaos run.  :class:`ChaosReplayDriver` extends the
plain :class:`~repro.serve.replay.StreamReplayDriver` to execute the
plan while replaying, then **reconciles**: every injected fault must be
accounted for in the queue's deadletter buckets, the service's
``faults.injected.*`` counters, or the driver's own acceptance ledger —
``injected == observed``, per fault type, or the report lists the
mismatches and flags itself unreconciled.

Fault taxonomy (see :data:`FAULT_KINDS`):

``malformed``
    A structurally invalid event (non-integer id, out-of-universe id,
    unknown edge type, NaN timestamp) → must land in the ``malformed``
    deadletter bucket.
``late``
    A timestamp behind the watermark by more than the configured
    ``late_tolerance`` → must land in the ``late event`` bucket.
``duplicate``
    An exact re-send of the last accepted event (same timestamp) →
    must be *accepted* (dedup is not the queue's contract; learning is
    robust to repeats).
``burst``
    ``payload`` copies of the last accepted event offered while
    dispatch is paused — a backpressure spike; overflow sheds must
    equal the ``backpressure`` bucket growth.
``crash``
    The service is dropped on the floor mid-stream and rebuilt via
    :func:`repro.resilience.recovery.recover`; its externally-visible
    tallies are banked first so reconciliation spans process lives.

Accounting across crashes: replayed WAL-suffix events bypass the new
queue's ``put`` (they were already counted before the crash), so
``banked + final`` tallies never double count — provided bursts shed
with ``drop_new`` (the driver's default), which keeps shed events out
of the WAL entirely.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig
from repro.datasets.base import Dataset
from repro.graph.streams import StreamEdge
from repro.resilience.recovery import recover
from repro.serve.replay import StreamReplayDriver
from repro.serve.service import RecommendationService, ServeConfig
from repro.utils.rng import derive_seed, new_rng
from repro.utils.timer import Timer

#: the five injectable fault kinds
FAULT_KINDS = ("malformed", "late", "duplicate", "burst", "crash")

#: malformed-event variants cycled by the plan's payload
_MALFORMED_VARIANTS = 4


@dataclass(frozen=True)
class Fault:
    """One scheduled fault, injected just before stream ``position``.

    ``payload`` is kind-specific: the malformed variant index, the
    late-event extra offset, or the burst size.
    """

    kind: str
    position: int
    payload: int = 0


@dataclass
class FaultPlan:
    """A deterministic schedule of faults over one stream replay."""

    faults: List[Fault] = field(default_factory=list)

    def at(self, position: int) -> List[Fault]:
        """Faults scheduled immediately before stream ``position``."""
        return [f for f in self.faults if f.position == position]

    def injection_counts(self) -> Dict[str, int]:
        """Events each kind will inject (bursts count ``payload`` each)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for fault in self.faults:
            counts[fault.kind] += fault.payload if fault.kind == "burst" else 1
        return counts

    @staticmethod
    def parse_spec(spec: str) -> Dict[str, int]:
        """Parse a CLI fault spec like ``"malformed=4,late=3,crash=1"``.

        ``""`` and ``"none"`` mean no faults.  Unknown kinds or
        non-integer counts raise ``ValueError``.
        """
        counts: Dict[str, int] = {}
        spec = spec.strip()
        if not spec or spec == "none":
            return counts
        for part in spec.split(","):
            name, _, value = part.partition("=")
            name = name.strip()
            if name not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {name!r} (choose from {FAULT_KINDS})"
                )
            try:
                count = int(value)
            except ValueError as exc:
                raise ValueError(
                    f"fault spec {part!r} needs an integer count"
                ) from exc
            if count < 0:
                raise ValueError(f"fault count must be >= 0 in {part!r}")
            counts[name] = counts.get(name, 0) + count
        return counts

    @classmethod
    def seeded(
        cls,
        num_events: int,
        seed: int = 0,
        malformed: int = 0,
        late: int = 0,
        duplicate: int = 0,
        burst: int = 0,
        crash: int = 0,
        burst_size: int = 96,
    ) -> "FaultPlan":
        """Draw a plan with the given per-kind fault counts.

        Positions are distinct and start at 1 so every fault has a
        template event (the last accepted one) to mutate.
        """
        total = malformed + late + duplicate + burst + crash
        if num_events < 2 and total:
            raise ValueError("need at least 2 stream events to inject faults")
        if total > num_events - 1:
            raise ValueError(
                f"{total} faults do not fit in {num_events - 1} injectable "
                "positions"
            )
        # salt the plan's stream away from any model/trainer seed usage
        rng = new_rng(derive_seed(seed, 0xFA017, num_events))
        positions = rng.choice(
            np.arange(1, num_events, dtype=np.int64), size=total, replace=False
        )
        faults: List[Fault] = []
        cursor = 0
        for kind, count in (
            ("malformed", malformed),
            ("late", late),
            ("duplicate", duplicate),
            ("burst", burst),
            ("crash", crash),
        ):
            for _ in range(count):
                position = int(positions[cursor])
                cursor += 1
                if kind == "malformed":
                    payload = int(rng.integers(0, _MALFORMED_VARIANTS))
                elif kind == "late":
                    payload = int(rng.integers(0, 8))
                elif kind == "burst":
                    payload = int(burst_size + rng.integers(0, burst_size // 4 + 1))
                else:
                    payload = 0
                faults.append(Fault(kind=kind, position=position, payload=payload))
        faults.sort(key=lambda f: (f.position, f.kind))
        return cls(faults=faults)


def _malformed_edge(template: StreamEdge, variant: int, num_nodes: int) -> StreamEdge:
    """A structurally invalid mutation of ``template``."""
    variant = variant % _MALFORMED_VARIANTS
    if variant == 0:
        return template._replace(u="not-a-node")  # type: ignore[arg-type]
    if variant == 1:
        return template._replace(v=num_nodes + 7)
    if variant == 2:
        return template._replace(edge_type="no-such-edge-type")
    return template._replace(t=float("nan"))


@dataclass
class ChaosReport:
    """Everything one chaos run injected, observed and reconciled."""

    dataset: str
    k: int
    num_events: int
    seed: int
    ingest_seconds: float
    events_accepted: int
    num_updates: int
    #: events injected per fault kind (bursts count per event)
    injected: Dict[str, int] = field(default_factory=dict)
    #: what the system recorded, per reconciliation channel
    observed: Dict[str, int] = field(default_factory=dict)
    #: deadletter reason buckets summed across process lives
    deadletter_buckets: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    reconciled: bool = False
    parity_users: int = 0
    parity_matches: int = 0
    parity_fraction: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready payload."""
        return {
            "dataset": self.dataset,
            "k": self.k,
            "num_events": self.num_events,
            "seed": self.seed,
            "ingest_seconds": self.ingest_seconds,
            "events_accepted": self.events_accepted,
            "num_updates": self.num_updates,
            "injected": dict(self.injected),
            "observed": dict(self.observed),
            "deadletter_buckets": dict(self.deadletter_buckets),
            "mismatches": list(self.mismatches),
            "reconciled": self.reconciled,
            "parity_users": self.parity_users,
            "parity_matches": self.parity_matches,
            "parity_fraction": self.parity_fraction,
        }

    def write_json(self, path: str) -> str:
        """Persist the report; creates parent directories. Returns path."""
        import json

        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(name, value) pairs for a printed summary table."""
        rows: List[Tuple[str, object]] = [
            ("dataset", self.dataset),
            ("events replayed", self.num_events),
            ("events accepted", self.events_accepted),
            ("updates applied", self.num_updates),
        ]
        for kind in FAULT_KINDS:
            if self.injected.get(kind):
                rows.append((f"injected {kind}", self.injected[kind]))
        rows.extend(
            [
                ("recoveries", self.observed.get("recoveries", 0)),
                ("replayed events", self.observed.get("replayed_events", 0)),
                ("reconciled", "yes" if self.reconciled else "NO"),
                (
                    f"top-{self.k} parity",
                    f"{self.parity_matches}/{self.parity_users}",
                ),
                ("parity fraction", round(self.parity_fraction, 4)),
            ]
        )
        if self.mismatches:
            rows.append(("mismatches", "; ".join(self.mismatches)))
        return rows


class ChaosReplayDriver(StreamReplayDriver):
    """Replay a dataset's stream while executing a :class:`FaultPlan`.

    Parameters beyond :class:`~repro.serve.replay.StreamReplayDriver`:

    state_dir:
        Directory owning this run's WAL and checkpoints; created (and,
        with ``fresh=True``, wiped of previous chaos state) up front.
        Crash faults recover from exactly these files.
    plan:
        The fault schedule; ``None`` draws a default all-kinds plan
        seeded from ``seed``.
    fresh:
        Remove a previous run's WAL/checkpoints from ``state_dir`` so
        sequence numbers start at 1 (default).  Pass ``False`` only
        when resuming an interrupted chaos run on purpose.

    The driver fills any unset resilience knobs on ``serve_config``
    (``wal_path``, ``checkpoint_dir``, ``checkpoint_every``) and
    requires a ``late_tolerance`` so late faults have a defined
    contract.  The default ``serve_config`` is chaos-sized: small
    batches, small capacity, ``drop_new`` overflow.
    """

    def __init__(
        self,
        dataset: Dataset,
        state_dir: str,
        plan: Optional[FaultPlan] = None,
        k: int = 10,
        serve_config: Optional[ServeConfig] = None,
        model_config: Optional[SUPAConfig] = None,
        train_config: Optional[InsLearnConfig] = None,
        probe_every: int = 64,
        probes_per_checkpoint: int = 2,
        max_parity_users: Optional[int] = None,
        seed: int = 0,
        trace: bool = False,
        fresh: bool = True,
    ):
        serve_config = serve_config or ServeConfig(
            batch_size=32,
            capacity=128,
            overflow="drop_new",
            late_tolerance=0.0,
        )
        if serve_config.late_tolerance is None:
            raise ValueError(
                "chaos replay needs serve_config.late_tolerance set; late "
                "faults are defined relative to it"
            )
        if serve_config.wal_path is None:
            serve_config.wal_path = os.path.join(state_dir, "chaos.wal")
        if serve_config.checkpoint_dir is None:
            serve_config.checkpoint_dir = os.path.join(state_dir, "checkpoints")
        if serve_config.checkpoint_every < 1:
            serve_config.checkpoint_every = 4
        super().__init__(
            dataset,
            k=k,
            serve_config=serve_config,
            model_config=model_config,
            train_config=train_config,
            probe_every=probe_every,
            probes_per_checkpoint=probes_per_checkpoint,
            max_parity_users=max_parity_users,
            seed=seed,
            trace=trace,
        )
        self.seed = seed
        self.state_dir = state_dir
        self.plan = plan
        os.makedirs(state_dir, exist_ok=True)
        if fresh:
            if os.path.exists(serve_config.wal_path):
                os.remove(serve_config.wal_path)
            if os.path.isdir(serve_config.checkpoint_dir):
                shutil.rmtree(serve_config.checkpoint_dir)

    def _default_plan(self, num_events: int) -> FaultPlan:
        return FaultPlan.seeded(
            num_events,
            seed=self.seed,
            malformed=4,
            late=3,
            duplicate=3,
            burst=1,
            crash=1,
            # at least queue capacity, so the burst is guaranteed to
            # overflow and exercise the backpressure accounting
            burst_size=self.serve_config.capacity,
        )

    def build_service(self) -> RecommendationService:
        service = super().build_service()
        self._register_fault_counters(service)
        return service

    @staticmethod
    def _register_fault_counters(service: RecommendationService) -> None:
        for kind in FAULT_KINDS:
            service.metrics.counter(f"faults.injected.{kind}")

    @staticmethod
    def _bank(service: RecommendationService, banked: Dict[str, float]) -> None:
        """Fold a dying service's externally-visible tallies into ``banked``
        (its metrics die with it; reconciliation must span process lives)."""
        for category, count in service.queue.reason_counts.items():
            banked[category] = banked.get(category, 0) + count
        for kind in FAULT_KINDS:
            name = f"faults.injected.{kind}"
            banked[name] = banked.get(name, 0) + service.metrics.counter(name).value
        service.close()

    def run(self) -> ChaosReport:  # type: ignore[override]
        """Execute the plan over a full replay; returns the reconciliation."""
        stream = list(self.dataset.stream)
        plan = self.plan or self._default_plan(len(stream))
        injected = plan.injection_counts()
        service = self.build_service()
        users = service.users

        banked: Dict[str, float] = {}
        duplicates_accepted = 0
        burst_accepted = 0
        burst_dropped = 0
        recoveries = 0
        replayed_total = 0
        skipped: Dict[str, int] = {}
        probe_cursor = 0
        last_accepted: Optional[StreamEdge] = None
        tolerance = float(self.serve_config.late_tolerance or 0.0)

        timer = Timer()
        with timer:
            for position, edge in enumerate(stream):
                for fault in plan.at(position):
                    kind = fault.kind
                    if kind == "crash":
                        service.metrics.counter("faults.injected.crash").inc()
                        self._bank(service, banked)
                        result = recover(
                            self.dataset,
                            serve_config=self.serve_config,
                            model_config=self.model_config,
                            train_config=self.train_config,
                            trace=self.trace,
                        )
                        service = result.service
                        self._register_fault_counters(service)
                        recoveries += 1
                        replayed_total += result.replayed_events
                        continue
                    if last_accepted is None:
                        # no template event yet (possible only if event 0
                        # itself was shed); keep the ledger honest
                        weight = fault.payload if kind == "burst" else 1
                        skipped[kind] = skipped.get(kind, 0) + weight
                        continue
                    if kind == "malformed":
                        service.metrics.counter("faults.injected.malformed").inc()
                        service.ingest(
                            _malformed_edge(
                                last_accepted, fault.payload, self.dataset.num_nodes
                            )
                        )
                    elif kind == "late":
                        service.metrics.counter("faults.injected.late").inc()
                        stale_t = (
                            service.queue.max_timestamp
                            - tolerance
                            - 1.0
                            - float(fault.payload)
                        )
                        service.ingest(last_accepted._replace(t=stale_t))
                    elif kind == "duplicate":
                        service.metrics.counter("faults.injected.duplicate").inc()
                        if service.ingest(StreamEdge(*last_accepted)):
                            duplicates_accepted += 1
                    elif kind == "burst":
                        service.queue.pause()
                        for _ in range(fault.payload):
                            service.metrics.counter("faults.injected.burst").inc()
                            if service.ingest(StreamEdge(*last_accepted)):
                                burst_accepted += 1
                            else:
                                burst_dropped += 1
                        service.queue.resume()
                if service.ingest(edge):
                    last_accepted = edge
                if (position + 1) % self.probe_every == 0:
                    for _ in range(self.probes_per_checkpoint):
                        user = int(users[probe_cursor % users.size])
                        probe_cursor += 1
                        service.recommend(user, self.k)
            service.flush()

        # ---------------------------------------------------- reconciliation
        def bucket_total(category: str) -> int:
            return int(
                banked.get(category, 0)
                + service.queue.reason_counts.get(category, 0)
            )

        def counter_total(kind: str) -> int:
            name = f"faults.injected.{kind}"
            return int(banked.get(name, 0) + service.metrics.counter(name).value)

        for kind, count in skipped.items():
            injected[kind] -= count

        buckets = dict(banked)
        for category, count in service.queue.reason_counts.items():
            buckets[category] = buckets.get(category, 0) + count
        buckets = {
            name: int(count)
            for name, count in buckets.items()
            if not name.startswith("faults.injected.")
        }

        mismatches: List[str] = []

        def check(label: str, expected: int, got: int) -> None:
            if expected != got:
                mismatches.append(f"{label}: injected {expected}, observed {got}")

        check("malformed deadletters", injected["malformed"], bucket_total("malformed"))
        check("late deadletters", injected["late"], bucket_total("late event"))
        check(
            "backpressure deadletters", burst_dropped, bucket_total("backpressure")
        )
        check("duplicates accepted", injected["duplicate"], duplicates_accepted)
        check(
            "burst dispositions",
            injected["burst"],
            burst_accepted + burst_dropped,
        )
        check("recoveries", injected["crash"], recoveries)
        for kind in FAULT_KINDS:
            check(f"{kind} counter", injected[kind], counter_total(kind))

        parity_users = self._parity_users(service)
        matches = 0
        for user in parity_users:
            served = service.recommend(int(user), self.k)
            offline = service.offline_top_k(int(user), self.k)
            if np.array_equal(served, offline):
                matches += 1

        return ChaosReport(
            dataset=self.dataset.name,
            k=self.k,
            num_events=len(stream),
            seed=self.seed,
            ingest_seconds=timer.elapsed,
            events_accepted=service.queue.accepted,
            num_updates=int(service.metrics.counter("updates.applied").value),
            injected=injected,
            observed={
                "malformed": bucket_total("malformed"),
                "late": bucket_total("late event"),
                "backpressure": bucket_total("backpressure"),
                "duplicates_accepted": duplicates_accepted,
                "burst_accepted": burst_accepted,
                "burst_dropped": burst_dropped,
                "recoveries": recoveries,
                "replayed_events": replayed_total,
            },
            deadletter_buckets=buckets,
            mismatches=mismatches,
            reconciled=not mismatches,
            parity_users=int(parity_users.size),
            parity_matches=matches,
            parity_fraction=(
                matches / parity_users.size if parity_users.size else 1.0
            ),
        )
