"""Crash recovery: newest valid checkpoint + WAL-suffix replay.

:func:`recover` rebuilds a :class:`~repro.serve.service.RecommendationService`
whose learned state is **bitwise identical** to the crashed process at
its last journaled decision — the same golden-parity discipline as
``tests/core/test_engine_parity.py``.  The argument, step by step:

1. The WAL (:mod:`repro.resilience.wal`) is the queue's decision log:
   ``accept``/``evict``/``batch`` records written *before* each state
   change.  Replaying it reconstructs the exact FIFO evolution of the
   queue — in particular the exact micro-batch boundaries the trainer
   saw, independent of when pauses or flushes happened to trigger
   dispatch.  (Ledger-only kinds — ``heartbeat`` liveness stamps and
   the ``shed``/``throttle`` admission decisions — fold to a no-op:
   they audit what was *denied*, which by construction never touched
   queue or model state.)
2. Rebuilding the graph consumes no randomness: ``SUPA.observe`` only
   inserts edges and ticks the (degree-derived, RNG-free) negative
   sampler's refresh schedule.  Observing the trained prefix therefore
   reproduces graph, caches-by-invalidation and sampler tables exactly.
3. All training randomness flows through exactly two generators —
   ``model.rng`` (walk/negative sampling) and the trainer's validation
   RNG — whose full PCG64 states live in the checkpoint.  Restoring
   ``state_dict`` + both RNG states puts the model on the identical
   stochastic path.
4. Replaying the post-checkpoint ``batch`` records through
   ``train_one_batch`` with the restored ``updates_applied`` as
   ``batch_index`` then re-derives every post-checkpoint update
   bit-for-bit; the surviving FIFO tail is preloaded back into the
   queue as residue.

With no usable checkpoint, recovery degrades gracefully to replaying
the *entire* WAL from a fresh model — slower, same parity guarantee.
The WAL is streamed (:func:`~repro.resilience.wal.iter_records`), never
materialised whole, so recovery memory is bounded by the *learned*
state, not the log length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.core.config import SUPAConfig
from repro.core.inslearn import InsLearnConfig, InsLearnTrainer
from repro.core.model import SUPA
from repro.datasets.base import Dataset
from repro.graph.streams import EdgeStream, StreamEdge
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.wal import (
    LEDGER_ONLY_KINDS,
    WalRecord,
    iter_records,
    scan,
)
from repro.serve.service import RecommendationService, ServeConfig
from repro.utils.timer import Timer


class RecoveryError(RuntimeError):
    """The WAL and checkpoint disagree in a way replay cannot reconcile."""


@dataclass
class RecoveryResult:
    """What :func:`recover` rebuilt, plus replay accounting."""

    service: RecommendationService
    #: WAL position of the checkpoint recovery started from (0 = none)
    checkpoint_seq: int
    #: accept records re-applied from the WAL suffix
    replayed_events: int
    #: micro-batches re-trained from the WAL suffix
    replayed_batches: int
    #: events restored into the queue buffer (accepted, never trained)
    residue_events: int
    #: torn/corrupt trailing records the WAL scan dropped
    torn_records_dropped: int
    #: wall-clock seconds the whole recovery took
    recovery_seconds: float


@dataclass
class QueueLogState:
    """FIFO evolution folded out of a WAL prefix."""

    #: events handed to the trainer, in micro-batch order
    trained: List[StreamEdge] = field(default_factory=list)
    #: events accepted but still buffered (the queue residue)
    fifo: List[StreamEdge] = field(default_factory=list)
    #: total ``accept`` records folded (ledger accounting)
    accepted: int = 0
    #: newest accepted-event timestamp (late-arrival watermark)
    watermark: float = float("-inf")


def fold_queue_log(
    records: Iterable[WalRecord], upto_seq: Optional[int] = None
) -> QueueLogState:
    """Fold queue decisions up to ``upto_seq`` into a :class:`QueueLogState`.

    Accepts any record iterable — a :func:`~repro.resilience.wal.iter_records`
    stream or an in-memory list — and stops without exhausting it once
    ``upto_seq`` is passed.  Heartbeats are skipped: they journal writer
    liveness, not queue decisions.
    """
    state = QueueLogState()
    for record in records:
        if upto_seq is not None and record.seq > upto_seq:
            break
        if record.kind in LEDGER_ONLY_KINDS:
            continue
        if record.kind == "accept":
            state.fifo.append(record.edge)
            state.accepted += 1
            state.watermark = max(state.watermark, record.edge.t)
        elif record.kind == "evict":
            if not state.fifo or state.fifo[0] != record.edge:
                raise RecoveryError(
                    f"evict record #{record.seq} does not match the queue head"
                )
            state.fifo.pop(0)
        else:  # batch
            if record.count > len(state.fifo):
                raise RecoveryError(
                    f"batch record #{record.seq} dispatches {record.count} "
                    f"events but only {len(state.fifo)} are buffered"
                )
            state.trained.extend(state.fifo[: record.count])
            del state.fifo[: record.count]
    return state


def recover(
    dataset: Dataset,
    serve_config: ServeConfig,
    model_config: Optional[SUPAConfig] = None,
    train_config: Optional[InsLearnConfig] = None,
    trace: bool = False,
) -> RecoveryResult:
    """Rebuild the service from ``serve_config``'s WAL + checkpoints.

    ``model_config`` / ``train_config`` must match the crashed process's
    (recovery re-derives, it does not store hyper-parameters); omitted
    values fall back to the same defaults ``RecommendationService``
    itself would use.
    """
    if serve_config.wal_path is None or serve_config.checkpoint_dir is None:
        raise ValueError(
            "serve_config must set wal_path and checkpoint_dir to recover"
        )
    timer = Timer()
    with timer:
        manager = CheckpointManager(
            serve_config.checkpoint_dir, retain=serve_config.checkpoint_retain
        )
        ckpt = manager.latest()
        status = scan(serve_config.wal_path, collect_records=False)
        base_seq = ckpt.seq if ckpt is not None else 0
        if base_seq > status.last_seq:
            raise RecoveryError(
                f"WAL ends at seq {status.last_seq} but the newest "
                f"checkpoint covers seq {base_seq} (log truncated?)"
            )
        prefix = fold_queue_log(
            iter_records(serve_config.wal_path), upto_seq=base_seq
        )
        fifo = prefix.fifo
        if ckpt is not None:
            if list(ckpt.residue) != fifo:
                raise RecoveryError(
                    "checkpoint residue disagrees with the WAL prefix "
                    f"({len(ckpt.residue)} vs {len(fifo)} buffered events)"
                )
            if ckpt.num_nodes and ckpt.num_nodes != dataset.num_nodes:
                raise RecoveryError(
                    f"checkpoint was taken over {ckpt.num_nodes} nodes but "
                    f"the dataset has {dataset.num_nodes}"
                )

        # 1. rebuild graph + sampler schedule (consumes no RNG), then
        #    restore the learned state and both RNG streams on top
        model = SUPA.for_dataset(dataset, model_config)
        for edge in prefix.trained:
            model.observe(edge.u, edge.v, edge.edge_type, edge.t)
        if ckpt is not None:
            model.load_state_dict(ckpt.model_state)
            model.rng.bit_generator.state = ckpt.model_rng_state
        train_config = train_config or InsLearnConfig(
            batch_size=serve_config.batch_size,
            max_iterations=4,
            validation_interval=2,
            validation_size=25,
            patience=1,
        )
        trainer = InsLearnTrainer(model, train_config)
        if ckpt is not None:
            trainer.set_rng_state(ckpt.trainer_rng_state)

        # 2. bring the service up at the checkpoint's watermark (its WAL
        #    reopens self-repairing and keeps appending from last_seq)
        service = RecommendationService(
            dataset,
            model=model,
            trainer=trainer,
            config=serve_config,
            trace=trace,
            initial_clock=ckpt.clock if ckpt is not None else 0.0,
        )

        # 3. replay the post-checkpoint suffix: batches retrain, evicts
        #    pop (their deadletters were the dead process's, not ours)
        replayed_events = 0
        replayed_batches = 0
        accepted_total = prefix.accepted
        watermark = prefix.watermark
        suffix_batches: List[List[StreamEdge]] = []
        for record in iter_records(
            serve_config.wal_path, from_seq=base_seq + 1
        ):
            if record.kind in LEDGER_ONLY_KINDS:
                continue
            if record.kind == "accept":
                fifo.append(record.edge)
                replayed_events += 1
                accepted_total += 1
                watermark = max(watermark, record.edge.t)
            elif record.kind == "evict":
                if not fifo or fifo[0] != record.edge:
                    raise RecoveryError(
                        f"evict record #{record.seq} does not match the "
                        "queue head during suffix replay"
                    )
                fifo.pop(0)
            else:
                if record.count > len(fifo):
                    raise RecoveryError(
                        f"batch record #{record.seq} dispatches "
                        f"{record.count} events but only {len(fifo)} "
                        "are buffered during suffix replay"
                    )
                chunk, fifo = fifo[: record.count], fifo[record.count :]
                suffix_batches.append(chunk)
        service.restore_runtime(
            updates_applied=ckpt.updates_applied if ckpt is not None else 0,
            max_timestamp=watermark,
        )
        with service.resilience_suspended():
            for chunk in suffix_batches:
                service.apply_recovered_batch(EdgeStream(chunk))
                replayed_batches += 1
        if fifo:
            service.queue.preload(fifo)
        # accepted-event accounting continues across process lives: every
        # accept record in the log was an acceptance this service inherits
        service.queue.restore_accounting(accepted=accepted_total)
        service.metrics.counter("ingest.accepted").set(service.queue.accepted)
        service.metrics.gauge("queue.pending").set(service.queue.pending)
        service.metrics.counter("recovery.replayed_events").inc(replayed_events)
        service.warm_cache()
    return RecoveryResult(
        service=service,
        checkpoint_seq=base_seq,
        replayed_events=replayed_events,
        replayed_batches=replayed_batches,
        residue_events=len(fifo),
        torn_records_dropped=status.dropped_records,
        recovery_seconds=timer.elapsed,
    )
