"""Walker's alias method for O(1) sampling from discrete distributions.

Used for the skip-gram noise distribution (degree^0.75), node2vec biased
transitions, and popularity-skewed synthetic data generation.  Building the
table is O(n); each draw is O(1), which matters because SUPA draws
``2 * N_neg`` negatives per edge over millions of edges.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, new_rng


class AliasTable:
    """Constant-time sampler over a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero unnormalised probabilities.  The table
        samples index ``i`` with probability ``weights[i] / sum(weights)``.
    """

    def __init__(self, weights: Sequence[float]):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {w.shape}")
        if w.size == 0:
            raise ValueError("cannot build an alias table over zero outcomes")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = w.size
        prob = w * (n / total)
        self._n = n
        self._prob = np.empty(n, dtype=np.float64)
        self._alias = np.empty(n, dtype=np.int64)

        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = prob[s]
            self._alias[s] = g
            prob[g] = (prob[g] + prob[s]) - 1.0
            if prob[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for leftover in large + small:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

        self._weights = w / total

    def __len__(self) -> int:
        return self._n

    @property
    def probabilities(self) -> np.ndarray:
        """The normalised distribution this table samples from."""
        return self._weights

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        """Draw one index (``size=None``) or an array of ``size`` indices."""
        rng = new_rng(rng)
        if size is None:
            i = int(rng.integers(self._n))
            if rng.random() < self._prob[i]:
                return i
            return int(self._alias[i])
        idx = rng.integers(self._n, size=size)
        keep = rng.random(size) < self._prob[idx]
        return np.where(keep, idx, self._alias[idx])
