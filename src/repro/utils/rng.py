"""Deterministic random number generation helpers.

Every stochastic component in this library receives an explicit
:class:`numpy.random.Generator`.  These helpers create them from integer
seeds and fan a parent generator out into independent child streams, so
experiments are reproducible end to end while components never share a
stream accidentally.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an ``int``, or an existing
    generator (returned unchanged, so callers can pass either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: Optional[int], *salt: int) -> Optional[int]:
    """Mix ``salt`` integers into ``seed`` to derive a stable sub-seed.

    Returns ``None`` unchanged so "no seed requested" propagates.
    """
    if seed is None:
        return None
    mask = (1 << 64) - 1
    mixed = int(seed) & mask
    for s in salt:
        mixed = (mixed * 6364136223846793005 + int(s) + 1442695040888963407) & mask
    return mixed % (2**63 - 1)
