"""Wall-clock timing helpers for the benchmark harnesses."""

from __future__ import annotations

import time
from typing import Dict, List


class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: List[float] = []
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.laps.append(lap)

    @property
    def mean_lap(self) -> float:
        """Average duration of completed laps (0.0 if none)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps = []


class StageTimer:
    """Named stage accumulator: ``with st.stage('sample'): ...``."""

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def stage(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def report(self) -> Dict[str, float]:
        """Total elapsed seconds per stage name."""
        return {name: t.elapsed for name, t in self._timers.items()}
