"""Shared utilities: seeded randomness, alias sampling, timing, tables."""

from repro.utils.alias import AliasTable
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timer import Timer

__all__ = ["AliasTable", "new_rng", "spawn_rngs", "format_table", "Timer"]
