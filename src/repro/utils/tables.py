"""Plain-text table rendering for benchmark output.

The benchmark harnesses print the same rows the paper's tables report;
this module renders them in aligned, monospaced form.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _render_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
    title: Optional[str] = None,
    highlight_best: Optional[Sequence[int]] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Parameters
    ----------
    precision:
        Decimal places for float cells.
    highlight_best:
        Column indices in which the maximum float value gets a ``*``
        suffix, mirroring the paper's bold-best convention.
    """
    rendered: List[List[str]] = [
        [_render_cell(v, precision) for v in row] for row in rows
    ]
    if highlight_best:
        for col in highlight_best:
            best_row, best_val = None, None
            for i, row in enumerate(rows):
                v = row[col]
                if isinstance(v, (int, float)) and (best_val is None or v > best_val):
                    best_row, best_val = i, v
            if best_row is not None:
                rendered[best_row][col] += "*"

    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
