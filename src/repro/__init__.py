"""SUPA / InsLearn: instant representation learning for recommendation
over large dynamic graphs (ICDE 2023), reproduced in pure Python.

Public entry points::

    from repro import SUPA, SUPAConfig, InsLearnTrainer, load_dataset
    from repro.baselines import make_baseline
    from repro.eval import RankingEvaluator

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core import (
    SUPA,
    InsLearnConfig,
    InsLearnTrainer,
    SUPAConfig,
    make_variant,
    tau_from_g,
    train_conventional,
)
from repro.datasets import Dataset, load_dataset
from repro.eval import RankingEvaluator
from repro.graph import DMHG, EdgeStream, GraphSchema, MultiplexMetapath
from repro.serve import RecommendationService, ServeConfig, StreamReplayDriver

__version__ = "1.0.0"

__all__ = [
    "SUPA",
    "SUPAConfig",
    "InsLearnTrainer",
    "InsLearnConfig",
    "train_conventional",
    "make_variant",
    "tau_from_g",
    "Dataset",
    "load_dataset",
    "RankingEvaluator",
    "DMHG",
    "EdgeStream",
    "GraphSchema",
    "MultiplexMetapath",
    "RecommendationService",
    "ServeConfig",
    "StreamReplayDriver",
    "__version__",
]
