"""Serving-layer throughput: ingest rate, latency, staleness, parity.

Replays zoo datasets through the online serving stack
(:mod:`repro.serve`) exactly as ``repro serve-replay`` does, sweeping
the update micro-batch size to show the serving trade-off: larger
batches amortise the InsLearn step (higher events/s) at the cost of
answering from a staler snapshot.

Every sweep point must keep **exact parity**: after ``flush()`` the
served top-K of every checked user equals the offline ranking pipeline.
The full reports are persisted to
``benchmarks/results/serving_throughput.json`` together with one
telemetry snapshot per dataset (``repro.obs`` span tree + metrics from
a **separate traced replay**) — the timed sweeps always run untraced.

**Closed-loop caveat.**  This harness replays each event only after the
previous one completed, so the measured rate is the service's
*capacity* and the latencies exclude open-loop queueing delay — they
are service time, not what a user of an open system would see.  The
service's ``clock_fn`` stage stamps still split that service time into
batch-buffer wait (``latency.queue_wait_seconds``: accept → batch
dispatch) vs the train/publish work (``stage.train_seconds``,
``stage.publish_seconds``), surfaced per sweep point under ``stages``
in the JSON.  For tail latency under a fixed *offered* rate, see
:mod:`bench_loadtest` / ``repro loadtest``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from harness import BENCH_SCALE, RESULTS_DIR, emit
from repro.core import SUPAConfig
from repro.datasets import load_dataset
from repro.serve import ServeConfig, StreamReplayDriver
from repro.utils.tables import format_table

DATASETS = ["uci", "lastfm"]
BATCH_SIZES = [64, 256]
K = 10
JSON_PATH = os.path.join(RESULTS_DIR, "serving_throughput.json")

#: stage histograms split out per sweep point (HDR-backed, seconds).
STAGE_METRICS = (
    "latency.queue_wait_seconds",
    "stage.train_seconds",
    "stage.publish_seconds",
)

CLOSED_LOOP_CAVEAT = (
    "closed-loop replay: each event waits for the previous one, so rates "
    "are capacity and latencies exclude open-loop queueing delay; see "
    "loadtest.json for tail latency at a fixed offered rate"
)


def _make_driver(dataset, batch_size: int, trace: bool = False) -> StreamReplayDriver:
    return StreamReplayDriver(
        dataset,
        k=K,
        serve_config=ServeConfig(
            batch_size=batch_size,
            capacity=max(2048, 4 * batch_size),
            clock_fn=time.perf_counter,
        ),
        model_config=SUPAConfig(dim=32, num_walks=2, walk_length=2, seed=0),
        probe_every=max(16, batch_size // 4),
        max_parity_users=64,
        trace=trace,
    )


def run_serving_throughput() -> List[List[object]]:
    rows: List[List[object]] = []
    reports: Dict[str, Dict[str, object]] = {}
    for name in DATASETS:
        dataset = load_dataset(name, scale=min(BENCH_SCALE, 0.25))
        for batch_size in BATCH_SIZES:
            report = _make_driver(dataset, batch_size).run()
            payload = report.as_dict()
            payload["closed_loop_caveat"] = CLOSED_LOOP_CAVEAT
            payload["stages"] = {
                metric: payload["metrics"][metric] for metric in STAGE_METRICS
            }
            reports[f"{name}/S={batch_size}"] = payload
            rows.append(
                [
                    name,
                    batch_size,
                    report.events_per_second,
                    report.recommend_p50_ms,
                    report.recommend_p95_ms,
                    report.cache_hit_rate,
                    report.max_staleness_events,
                    report.parity_fraction,
                ]
            )
        # Telemetry snapshot: one extra replay per dataset with tracing
        # on — never the replays the throughput rows were timed over.
        traced = _make_driver(dataset, BATCH_SIZES[-1], trace=True).run()
        reports[f"{name}/telemetry"] = traced.as_dict()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(reports, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return rows


def test_serving_throughput(benchmark):
    rows = benchmark.pedantic(run_serving_throughput, rounds=1, iterations=1)
    text = format_table(
        [
            "dataset",
            "S_batch",
            "events/s",
            "rec p50 (ms)",
            "rec p95 (ms)",
            "hit rate",
            "max stale",
            "parity",
        ],
        rows,
        title=f"Online serving throughput (k={K})",
        precision=3,
    )
    emit("serving_throughput", text)

    # exact parity at every sweep point — the serving contract
    assert all(row[7] >= 0.99 for row in rows)
    # larger micro-batches may serve staler answers, never inconsistent
    assert all(row[6] >= 0 for row in rows)
    assert os.path.exists(JSON_PATH)
    benchmark.extra_info["events/s"] = max(row[2] for row in rows)
