"""Open-loop offered-load sweep: latency tails with queueing attribution.

Unlike :mod:`bench_serving_throughput` (closed-loop: each event waits
for the previous one, so queueing delay is structurally invisible),
this harness drives the serving stack **open-loop** through
:mod:`repro.obs.loadgen`: seeded Poisson arrivals at fixed fractions of
the service's calibrated closed-loop capacity.  Each tier reports
p50/p99/p999 end-to-end latency split into queue wait (admission →
dispatch) vs service time (dispatch → completion), the
service-internal stage percentiles (batch-buffer wait, train, publish)
and the HDR-vs-exact p999 bucket error.

The run must pass the loadtest gate
(:func:`repro.obs.loadgen.sweep_gate_failures`): >= 3 tiers, the
lowest sub-saturation tier keeps queue-wait p99 below service-time
p99, and every tier's HDR p999 sits within one bucket of the exact
quantile of its replayed samples.  The sweep is persisted to
``benchmarks/results/loadtest.json``.

A second sweep (``test_overload``) turns on async dispatch + admission
control and drives a 2x-capacity tier past saturation, gated on the
overload contract (:func:`repro.obs.loadgen.overload_gate_failures`):
the producer-visible ``ingest()`` p99 stays within 10x the
sub-saturation reference (flat admission cost — the producer pays the
journaled accept decision, not the training backlog) and the
past-saturation tier measurably sheds load.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from harness import BENCH_SCALE, RESULTS_DIR, emit
from repro.core import SUPAConfig
from repro.core.model import SUPA
from repro.datasets import load_dataset
from repro.obs.loadgen import (
    overload_gate_failures,
    run_offered_load_sweep,
    sweep_gate_failures,
)
from repro.obs.quality import StreamingQualityEvaluator
from repro.serve import (
    AdmissionConfig,
    RecommendationService,
    ServeConfig,
)
from repro.utils.tables import format_table

DATASET = "uci"
K = 10
DIM = 32
BATCH_SIZE = 64
EVENTS = 400
#: offered-load tiers as fractions of closed-loop capacity.  The lowest
#: tier must sit well below the batch-update duty cycle: at fraction f
#: of capacity roughly f of all arrivals land while a batch update is
#: running, so queue-wait p99 approaches the update duration (and the
#: gate's "queueing must not dominate below saturation" check loses its
#: margin) once f nears 0.01 / (1 - p99 target).
TIERS = [0.02, 0.5, 2.0]
#: the overload sweep needs only a reference tier and a past-saturation
#: tier; a small capacity makes the depth watermarks reachable within
#: EVENTS arrivals so shedding actually engages.
OVERLOAD_TIERS = [0.25, 2.0]
OVERLOAD_CAPACITY = 256
JSON_PATH = os.path.join(RESULTS_DIR, "loadtest.json")
OVERLOAD_JSON_PATH = os.path.join(RESULTS_DIR, "loadtest_overload.json")


def _make_service(dataset) -> RecommendationService:
    model = SUPA.for_dataset(
        dataset,
        config=SUPAConfig(dim=DIM, num_walks=2, walk_length=2, seed=0),
    )
    return RecommendationService(
        dataset,
        model=model,
        config=ServeConfig(
            batch_size=BATCH_SIZE,
            capacity=4096,
            overflow="drop_new",
            clock_fn=time.perf_counter,
        ),
    )


def _make_overload_service(dataset) -> RecommendationService:
    model = SUPA.for_dataset(
        dataset,
        config=SUPAConfig(dim=DIM, num_walks=2, walk_length=2, seed=0),
    )
    return RecommendationService(
        dataset,
        model=model,
        config=ServeConfig(
            batch_size=BATCH_SIZE,
            capacity=OVERLOAD_CAPACITY,
            overflow="drop_new",
            clock_fn=time.perf_counter,
            async_dispatch=True,
            admission=AdmissionConfig(
                shed_policy="reject",
                depth_highwater=0.2,
                depth_lowwater=0.1,
                seed=0,
            ),
        ),
    )


def run_loadtest() -> Dict[str, object]:
    dataset = load_dataset(DATASET, scale=min(BENCH_SCALE, 0.1), seed=0)
    edges = list(dataset.stream)[:EVENTS]
    sweep = run_offered_load_sweep(
        lambda: _make_service(dataset),
        edges,
        fractions=TIERS,
        kind="poisson",
        seed=0,
        k=K,
        quality_factory=lambda service: StreamingQualityEvaluator(service, k=K),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(sweep, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sweep


def test_loadtest(benchmark):
    sweep = benchmark.pedantic(run_loadtest, rounds=1, iterations=1)
    rows: List[List[object]] = [
        [
            f"{tier['fraction_of_capacity']:g}x",
            tier["offered_rate"],
            tier["achieved_rate"],
            tier["e2e"]["p50"] * 1e3,
            tier["e2e"]["p99"] * 1e3,
            tier["e2e"]["p99.9"] * 1e3,
            tier["queue_wait"]["p99"] * 1e3,
            tier["service"]["p99"] * 1e3,
            tier["hdr_p999_bucket_error"],
            tier["quality"]["hit_rate"],
        ]
        for tier in sweep["tiers"]
    ]
    text = format_table(
        [
            "tier",
            "offered/s",
            "achieved/s",
            "e2e p50 ms",
            "e2e p99 ms",
            "e2e p999 ms",
            "qwait p99 ms",
            "svc p99 ms",
            "p999 Δbkt",
            "hit rate",
        ],
        rows,
        title=(
            f"Open-loop load sweep ({DATASET}, poisson, capacity "
            f"{sweep['capacity_events_per_second']:.0f} events/s)"
        ),
        precision=3,
    )
    emit("loadtest", text)

    failures = sweep_gate_failures(sweep)
    assert not failures, "; ".join(failures)
    assert os.path.exists(JSON_PATH)
    benchmark.extra_info["capacity_events_per_second"] = sweep[
        "capacity_events_per_second"
    ]


def run_overload() -> Dict[str, object]:
    dataset = load_dataset(DATASET, scale=min(BENCH_SCALE, 0.1), seed=0)
    edges = list(dataset.stream)[:EVENTS]
    sweep = run_offered_load_sweep(
        lambda: _make_overload_service(dataset),
        edges,
        fractions=OVERLOAD_TIERS,
        kind="poisson",
        seed=0,
        k=K,
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OVERLOAD_JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(sweep, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sweep


def test_overload(benchmark):
    sweep = benchmark.pedantic(run_overload, rounds=1, iterations=1)
    rows: List[List[object]] = [
        [
            f"{tier['fraction_of_capacity']:g}x",
            tier["offered_rate"],
            tier["achieved_rate"],
            tier["e2e"]["p99"] * 1e3,
            tier["ingest_latency"]["p50"] * 1e3,
            tier["ingest_latency"]["p99"] * 1e3,
            tier["ingest"]["shed"],
            tier["admission"]["escalations"],
        ]
        for tier in sweep["tiers"]
    ]
    text = format_table(
        [
            "tier",
            "offered/s",
            "achieved/s",
            "e2e p99 ms",
            "ingest p50 ms",
            "ingest p99 ms",
            "shed",
            "escalations",
        ],
        rows,
        title=(
            f"Overload sweep ({DATASET}, async dispatch + admission, "
            f"capacity {sweep['capacity_events_per_second']:.0f} events/s)"
        ),
        precision=3,
    )
    emit("loadtest_overload", text)

    failures = overload_gate_failures(sweep)
    assert not failures, "; ".join(failures)
    over = [t for t in sweep["tiers"] if t["fraction_of_capacity"] > 1.0]
    assert all(t["ingest"]["shed"] > 0 for t in over)
    assert os.path.exists(OVERLOAD_JSON_PATH)
