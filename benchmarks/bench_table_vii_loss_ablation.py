"""Table VII: contribution of the three losses + InsLearn effectiveness.

Runs every loss-usage combination of L_inter / L_prop / L_neg (keep one,
drop one), the conventional-training variant SUPA_w/oIns, and full SUPA
on all six datasets, reporting H@50 and MRR.

Expected shape (paper): full SUPA best overall; L_prop the most
important single loss; SUPA_w/oIns comparable on the static Amazon
graph but behind elsewhere (and slower).
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from harness import (
    ALL_DATASETS,
    BENCH_QUERIES,
    emit,
    evaluate_queries,
    prepare,
    supa_configs,
)
from repro.core import SUPA, InsLearnTrainer
from repro.core.inslearn import train_conventional
from repro.core.variants import make_variant
from repro.utils.tables import format_table

VARIANTS = [
    "supa_inter",
    "supa_prop",
    "supa_neg",
    "supa_wo_inter",
    "supa_wo_prop",
    "supa_wo_neg",
    "supa_wo_ins",
    "supa",
]

_ROWS: Dict[str, Dict[str, Dict[str, float]]] = {}


def run_dataset(name: str) -> Dict[str, Dict[str, float]]:
    if name in _ROWS:
        return _ROWS[name]
    dataset, train, _, queries = prepare(name)
    base_cfg, train_cfg = supa_configs()
    out: Dict[str, Dict[str, float]] = {}
    for variant in VARIANTS:
        cfg = make_variant(variant, base_cfg)
        model = SUPA.for_dataset(dataset, cfg)
        if variant == "supa_wo_ins":
            train_conventional(model, train, epochs=3)
        else:
            InsLearnTrainer(model, train_cfg).fit(train)
        result = evaluate_queries(model, queries)
        out[variant] = {"H@50": result["H@50"], "MRR": result["MRR"]}
    _ROWS[name] = out
    return out


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_loss_ablation_dataset(benchmark, dataset_name):
    out = benchmark.pedantic(run_dataset, args=(dataset_name,), rounds=1, iterations=1)
    benchmark.extra_info["supa H@50"] = out["supa"]["H@50"]


def test_render_table_vii(benchmark):
    def render():
        results = {name: run_dataset(name) for name in ALL_DATASETS}
        headers = ["variant"] + [
            f"{d}:{m}" for d in ALL_DATASETS for m in ("H@50", "MRR")
        ]
        rows = []
        for variant in VARIANTS:
            row: List[object] = [variant]
            for d in ALL_DATASETS:
                row.extend(
                    results[d][variant][m] for m in ("H@50", "MRR")
                )
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Table VII: loss combinations and InsLearn ablation",
            highlight_best=list(range(1, len(headers))),
        )

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    emit("table_vii_loss_ablation", text)
    assert "supa" in text
