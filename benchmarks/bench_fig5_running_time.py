"""Figure 5: total running time of the dynamic link-prediction protocol.

The sum over all 9 steps of each method's (re)training time in the
Figure 4 protocol.  Expected shape (paper): SUPA is the fastest because
InsLearn trains incrementally in a single pass, while static baselines
pay for full retraining at every step.
"""

from __future__ import annotations

from bench_fig4_dynamic_link_prediction import METHODS, run_dynamic_protocol
from harness import emit
from repro.utils.tables import format_table


def test_fig5_running_time(benchmark):
    per_method, runtimes = benchmark.pedantic(
        run_dynamic_protocol, rounds=1, iterations=1
    )
    rows = sorted(
        ([name, runtimes[name]] for name in METHODS), key=lambda r: r[1]
    )
    text = format_table(
        ["method", "total retrain seconds (9 steps)"],
        rows,
        title="Figure 5: cumulative (re)training time, dynamic protocol",
        precision=2,
    )
    emit("fig5_running_time", text)
    assert runtimes["SUPA"] > 0
    benchmark.extra_info["SUPA seconds"] = runtimes["SUPA"]
