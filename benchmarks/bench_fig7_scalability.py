"""Figure 7: scalability of SUPA in batch size S_batch.

Measures the average wall-clock time to absorb one batch of S_batch new
edges (training + validation, the full InsLearn step) and the resulting
recommendation quality, sweeping S_batch over powers of two.

Expected shape (paper): per-batch time linear in S_batch (constant
throughput in edges/second) while quality stays flat for
S_batch >= 32.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from harness import BENCH_QUERIES, emit, prepare, supa_configs
from repro.baselines import make_baseline
from repro.core import InsLearnConfig
from repro.eval import RankingEvaluator
from repro.utils.tables import format_table

BATCH_SIZES = [32, 64, 128, 256, 512, 1024, 2048]


def run_scalability():
    dataset, train, _, queries = prepare("movielens")
    evaluator = RankingEvaluator(hit_ks=(50,), ndcg_k=10, max_queries=BENCH_QUERIES, rng=0)
    rows: List[List[object]] = []
    for batch_size in BATCH_SIZES:
        model_cfg, train_cfg = supa_configs()
        train_cfg = InsLearnConfig(
            batch_size=batch_size,
            max_iterations=train_cfg.max_iterations,
            validation_interval=train_cfg.validation_interval,
            validation_size=min(train_cfg.validation_size, max(10, batch_size // 8)),
            patience=train_cfg.patience,
        )
        model = make_baseline(
            "SUPA", dataset, config=model_cfg, train_config=train_cfg
        )
        start = time.perf_counter()
        model.fit(train)
        elapsed = time.perf_counter() - start
        num_batches = int(np.ceil(len(train) / batch_size))
        per_batch = elapsed / num_batches
        h50 = evaluator.evaluate(model, queries)["H@50"]
        rows.append(
            [batch_size, per_batch, batch_size / per_batch, h50]
        )
    return rows


def test_fig7_scalability(benchmark):
    rows = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    text = format_table(
        ["S_batch", "sec/batch", "edges/sec", "H@50"],
        rows,
        title="Figure 7: SUPA scalability in S_batch",
        precision=3,
    )
    emit("fig7_scalability", text)

    # shape assertions: per-batch time grows with batch size, while
    # throughput (edges/sec) stays within an order of magnitude.
    per_batch = [r[1] for r in rows]
    assert per_batch[-1] > per_batch[0]
    throughput = [r[2] for r in rows]
    assert max(throughput) / max(min(throughput), 1e-9) < 10
    benchmark.extra_info["edges/sec @2048"] = rows[-1][2]
