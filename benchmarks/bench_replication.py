"""Replication benchmark: read-qps scaling and bounded staleness.

For fleets of 1, 2 and 4 followers, one primary ingests a write
workload while every follower tails its WAL and serves top-K reads
from its own replica (one thread per follower, mirroring the
one-driver-per-replica deployment contract).  Measured:

* **aggregate read qps** across the fleet while writes are in flight —
  replicas scale reads because each serves from its own store/index
  (the scoring path is numpy-bound, so threads overlap);
* **seq lag** — each follower samples ``primary.last_seq -
  follower.applied_seq`` after every poll; p50/p99 must stay within
  the configured ``max_lag_records`` bound;
* **bytes shipped** per follower, from the tailer.

Reads are served cache-less here (``cache_size=0``) so every probe
pays the full scoring cost — the honest per-read price, and the
regime where extra replicas matter.  Results land in
``benchmarks/results/replication.json``; the gate is the staleness
bound (scaling factors are recorded for inspection — wall-clock
ratios on a loaded CI box are too noisy to gate on).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from typing import Dict, List

import numpy as np

from harness import BENCH_SCALE, RESULTS_DIR, emit
from repro.core import InsLearnConfig, SUPAConfig
from repro.datasets import load_dataset
from repro.replicate import (
    ReplicationConfig,
    ReplicationFollower,
    ReplicationPrimary,
)
from repro.serve import ServeConfig
from repro.utils.tables import format_table

DATASET = "uci"
BATCH_SIZE = 64
K = 10
WARMUP_FRACTION = 0.4
FLEETS = (1, 2, 4)
JSON_PATH = os.path.join(RESULTS_DIR, "replication.json")


def _configs(seed: int = 0):
    serve_cfg = ServeConfig(
        batch_size=BATCH_SIZE,
        capacity=512,
        overflow="drop_new",
        late_tolerance=0.0,
        cache_size=0,
    )
    model_cfg = SUPAConfig(dim=32, num_walks=2, walk_length=2, seed=seed)
    train_cfg = InsLearnConfig(
        batch_size=BATCH_SIZE,
        max_iterations=2,
        validation_interval=1,
        validation_size=25,
        patience=1,
        seed=seed,
    )
    replication = ReplicationConfig(heartbeat_every=32, checkpoint_every=4)
    return serve_cfg, model_cfg, train_cfg, replication


class _Reader(threading.Thread):
    """One follower replica: poll the shipped WAL, serve reads, sample lag."""

    def __init__(self, follower: ReplicationFollower, primary, stop, k: int):
        super().__init__(daemon=True)
        self.follower = follower
        self.primary = primary
        self.stop = stop
        self.k = k
        self.reads = 0
        self.lag_samples: List[int] = []

    def run(self) -> None:
        users = self.follower.service.users
        cursor = 0
        while not self.stop.is_set():
            self.follower.poll()
            self.lag_samples.append(
                self.follower.lag_from(self.primary.last_seq)
            )
            for _ in range(4):
                user = int(users[cursor % users.size])
                cursor += 1
                self.follower.recommend(user, self.k)
                self.reads += 1
        # final drain: apply everything the writer shipped
        while self.follower.poll():
            pass
        self.lag_samples.append(self.follower.lag_from(self.primary.last_seq))


def _measure_fleet(dataset, num_followers: int, seed: int = 0) -> Dict[str, object]:
    serve_cfg, model_cfg, train_cfg, replication = _configs(seed)
    stream = list(dataset.stream)
    warmup = max(1, int(len(stream) * WARMUP_FRACTION))
    state_dir = tempfile.mkdtemp(prefix="repro-bench-replication-")
    try:
        primary = ReplicationPrimary(
            dataset,
            state_dir,
            serve_config=serve_cfg,
            model_config=model_cfg,
            train_config=train_cfg,
            replication=replication,
        )
        for edge in stream[:warmup]:
            primary.ingest(edge)
        primary.checkpoint()

        followers = [
            ReplicationFollower(
                dataset,
                state_dir,
                serve_config=serve_cfg,
                model_config=model_cfg,
                train_config=train_cfg,
                replication=replication,
            ).bootstrap()
            for _ in range(num_followers)
        ]
        stop = threading.Event()
        readers = [_Reader(f, primary, stop, K) for f in followers]

        start = time.perf_counter()
        for reader in readers:
            reader.start()
        for edge in stream[warmup:]:
            primary.ingest(edge)
        primary.flush()
        stop.set()
        for reader in readers:
            reader.join()
        elapsed = time.perf_counter() - start
        primary.close()

        reads = sum(r.reads for r in readers)
        lags = np.concatenate(
            [np.asarray(r.lag_samples, dtype=np.int64) for r in readers]
        )
        bytes_shipped = sum(
            int(f.tailer.bytes_read) for f in followers if f.tailer
        )
        applied = [f.applied_seq for f in followers]
        return {
            "followers": num_followers,
            "write_events": len(stream) - warmup,
            "reads": int(reads),
            "read_qps": reads / elapsed if elapsed else 0.0,
            "elapsed_seconds": elapsed,
            "lag_p50": float(np.percentile(lags, 50)),
            "lag_p99": float(np.percentile(lags, 99)),
            "lag_max": int(lags.max()),
            "lag_bound": replication.max_lag_records,
            "within_bound": bool(
                np.percentile(lags, 99) <= replication.max_lag_records
            ),
            "final_drain_complete": bool(
                all(seq == primary.last_seq for seq in applied)
            ),
            "bytes_shipped": bytes_shipped,
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def run_replication_benchmark() -> Dict[str, object]:
    dataset = load_dataset(DATASET, scale=min(BENCH_SCALE, 0.5))
    fleets = [_measure_fleet(dataset, n) for n in FLEETS]
    base_qps = fleets[0]["read_qps"] or 1.0
    for row in fleets:
        row["qps_scaling_vs_1"] = row["read_qps"] / base_qps
    return {
        "dataset": DATASET,
        "num_events": len(dataset.stream),
        "batch_size": BATCH_SIZE,
        "k": K,
        "fleets": fleets,
        "all_within_bound": all(r["within_bound"] for r in fleets),
        "all_drained": all(r["final_drain_complete"] for r in fleets),
    }


def main() -> int:
    summary = run_replication_benchmark()
    rows = [
        [
            r["followers"],
            r["reads"],
            round(r["read_qps"], 1),
            round(r["qps_scaling_vs_1"], 2),
            round(r["lag_p50"], 1),
            round(r["lag_p99"], 1),
            r["lag_bound"],
            "yes" if r["within_bound"] else "NO",
        ]
        for r in summary["fleets"]
    ]
    text = format_table(
        [
            "followers", "reads", "read qps", "scaling", "lag p50",
            "lag p99", "bound", "within bound",
        ],
        rows,
        title=(
            f"WAL-shipping replication on {summary['dataset']} "
            f"({summary['num_events']} events, S={summary['batch_size']}, "
            f"k={summary['k']}, cache off)"
        ),
    )
    emit("replication", text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")
    return 0 if summary["all_within_bound"] and summary["all_drained"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
