"""Implementation-choice ablations called out in DESIGN.md section 5.

Not paper artefacts, but benches for this reproduction's own design
decisions:

* hand-derived SUPA gradients vs. the generic autograd engine — the
  same interaction loss computed both ways, measuring step overhead;
* alias-table negative sampling vs. linear scan over a cumulative
  distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Adam, Tensor
from repro.autograd.functional import log_sigmoid
from repro.core.interactor import interaction_loss, interaction_loss_backward
from repro.utils.alias import AliasTable
from repro.utils.rng import new_rng

DIM = 64
RNG = np.random.default_rng(0)
H_U, C_U = RNG.normal(size=DIM), RNG.normal(size=DIM)
H_V, C_V = RNG.normal(size=DIM), RNG.normal(size=DIM)


def test_hand_gradient_step(benchmark):
    """Analytic forward+backward of the interaction loss."""

    def step():
        fwd = interaction_loss(H_U, C_U, H_V, C_V)
        return interaction_loss_backward(fwd)

    grads = benchmark(step)
    assert len(grads) == 4


def test_autograd_gradient_step(benchmark):
    """The same loss through the tape — the overhead SUPA avoids."""

    def step():
        h_u = Tensor(H_U, requires_grad=True)
        c_u = Tensor(C_U, requires_grad=True)
        h_v = Tensor(H_V, requires_grad=True)
        c_v = Tensor(C_V, requires_grad=True)
        h_r_u = (h_u + c_u) * 0.5
        h_r_v = (h_v + c_v) * 0.5
        loss = -log_sigmoid(h_r_u @ h_r_v)
        loss.backward()
        return h_u.grad

    grad = benchmark(step)
    fwd = interaction_loss(H_U, C_U, H_V, C_V)
    expected = interaction_loss_backward(fwd)[0]
    assert np.allclose(grad, expected)


WEIGHTS = np.random.default_rng(1).random(5000) ** 2


def test_alias_sampling(benchmark):
    table = AliasTable(WEIGHTS)
    rng = new_rng(0)
    out = benchmark(lambda: table.sample(rng, size=10))
    assert len(out) == 10


def test_linear_scan_sampling(benchmark):
    """The naive alternative the alias table replaces."""
    probs = WEIGHTS / WEIGHTS.sum()
    cdf = np.cumsum(probs)
    rng = new_rng(0)

    def scan():
        return np.searchsorted(cdf, rng.random(10))

    out = benchmark(scan)
    assert len(out) == 10
