"""Training throughput: per-edge reference vs batched execution engine.

Measures steady-state edges/sec of both engines on the synthetic zoo
with the protocol of :mod:`repro.core.engine.benchmark`: a 16,384-edge
warm-up history (the dense-neighbourhood regime InsLearn runs in), then
timed replay passes over the next ``S_batch = 1024`` micro-batch,
median of repeats.  Both engines replay the same records with identical
RNG sequences and the warm-up losses must agree **bitwise** — a speedup
over a different computation would be meaningless.

The gate: the geometric-mean speedup across the zoo must be >= 3x.
Results are persisted to ``benchmarks/results/train_throughput.json``
together with a per-dataset telemetry snapshot (``repro.obs`` span tree
plus engine counters) collected in a **separate traced pass** — the
timed sweeps themselves always run untraced.
"""

from __future__ import annotations

import json
import os
from typing import List

from harness import RESULTS_DIR, emit
from repro.core.engine.benchmark import DEFAULT_DATASETS, measure_zoo
from repro.utils.tables import format_table

WARM_HISTORY = int(os.environ.get("REPRO_BENCH_TRAIN_HISTORY", "16384"))
S_BATCH = 1024
MIN_GEOMEAN_SPEEDUP = 3.0
JSON_PATH = os.path.join(RESULTS_DIR, "train_throughput.json")


def run_train_throughput() -> dict:
    summary = measure_zoo(
        dataset_names=DEFAULT_DATASETS,
        scale=1.0,
        warm_history=WARM_HISTORY,
        batch_size=S_BATCH,
        telemetry=True,
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return summary


def test_train_throughput(benchmark):
    summary = benchmark.pedantic(run_train_throughput, rounds=1, iterations=1)
    rows: List[List[object]] = [
        [
            r["dataset"],
            r["reference_edges_per_second"],
            r["batched_edges_per_second"],
            r["speedup"],
            "yes" if r["parity"] else "NO",
        ]
        for r in summary["datasets"]
    ]
    text = format_table(
        ["dataset", "reference e/s", "batched e/s", "speedup", "parity"],
        rows,
        title=(
            f"Engine training throughput (S_batch={S_BATCH}, "
            f"history={WARM_HISTORY}, geomean {summary['geomean_speedup']:.2f}x)"
        ),
        precision=2,
    )
    emit("train_throughput", text)

    # bitwise parity on every dataset — the engines compute the same model
    assert all(r["parity"] for r in summary["datasets"])
    # the batched engine must hold its speedup in the steady state
    assert summary["geomean_speedup"] >= MIN_GEOMEAN_SPEEDUP
    assert os.path.exists(JSON_PATH)
    # the telemetry snapshot (traced pass, never timed) rode along
    assert len(summary["telemetry"]) == len(summary["datasets"])
    assert all(t["trace"]["spans"] for t in summary["telemetry"])
    benchmark.extra_info["geomean_speedup"] = summary["geomean_speedup"]
