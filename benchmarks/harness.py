"""Shared machinery for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation section.  This module centralises:

* CPU-scale method configurations (the paper used a GPU; step counts
  and dimensions are shrunk so a full table finishes in minutes while
  preserving each method's mechanism),
* dataset/evaluation sizing via environment knobs
  (``REPRO_BENCH_SCALE``, ``REPRO_BENCH_QUERIES``),
* fit + evaluate plumbing with wall-clock capture, and
* result persistence: every harness prints its paper-style table and
  writes it under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import make_baseline
from repro.baselines.base import BaselineModel
from repro.core import InsLearnConfig, SUPAConfig
from repro.datasets import load_dataset
from repro.datasets.base import Dataset
from repro.eval import RankingEvaluator
from repro.eval.ranking import EvaluationResult, RankingQuery
from repro.graph.streams import EdgeStream
from repro.utils.tables import format_table

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "120"))
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

ALL_DATASETS = ["uci", "amazon", "lastfm", "movielens", "taobao", "kuaishou"]

#: CPU-scale constructor arguments per method (mechanism unchanged).
METHOD_KWARGS: Dict[str, dict] = {
    "DeepWalk": dict(num_walks=3, walk_length=6, epochs=1),
    "LINE": dict(samples_per_edge=3),
    "node2vec": dict(num_walks=3, walk_length=6, epochs=1),
    "GATNE": dict(num_walks=2, walk_length=6, epochs=1),
    "NGCF": dict(steps=150),
    "LightGCN": dict(steps=200),
    "MATN": dict(steps=150),
    "MB-GMN": dict(steps=150),
    "HybridGNN": dict(steps=150),
    "MeLU": dict(global_steps=1200),
    "NetWalk": dict(num_walks=2, walk_length=5),
    "DyGNN": dict(),
    "EvolveGCN": dict(steps=80, num_snapshots=3),
    "TGAT": dict(steps=200),
    "DyHNE": dict(),
    "DyHATR": dict(steps=60, num_snapshots=3),
    "SUPA": dict(),
}


def supa_configs(dim: int = 32, seed: int = 0):
    """The calibrated CPU-scale SUPA model + InsLearn settings."""
    model_cfg = SUPAConfig(dim=dim, num_walks=4, walk_length=3, seed=seed)
    train_cfg = InsLearnConfig(
        batch_size=1024,
        max_iterations=8,
        validation_interval=2,
        validation_size=100,
        patience=2,
        seed=seed,
    )
    return model_cfg, train_cfg


def build_method(
    name: str,
    dataset: Dataset,
    dim: int = 32,
    seed: int = 0,
    steps_scale: float = 1.0,
) -> BaselineModel:
    """Instantiate a method with its CPU-scale configuration.

    ``steps_scale`` multiplies iterative training budgets (``steps``,
    ``global_steps``) — the dynamic protocol uses it so a *retrained*
    baseline's cost grows with the data it retrains on, as
    training-to-convergence does in the paper's setup.
    """
    kwargs = dict(METHOD_KWARGS.get(name, {}))
    if steps_scale != 1.0:
        for key in ("steps", "global_steps"):
            if key in kwargs:
                kwargs[key] = max(1, int(round(kwargs[key] * steps_scale)))
    if name == "SUPA":
        model_cfg, train_cfg = supa_configs(dim=dim, seed=seed)
        kwargs.update(config=model_cfg, train_config=train_cfg)
    return make_baseline(name, dataset, dim=dim, seed=seed, **kwargs)


@dataclass
class MethodRun:
    """One (method, dataset) evaluation outcome."""

    method: str
    dataset: str
    metrics: Dict[str, float]
    fit_seconds: float
    result: EvaluationResult = field(repr=False, default=None)

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


def prepare(name: str, scale: Optional[float] = None, seed: int = 0):
    """Dataset + (train, valid, test) split + capped test queries."""
    dataset = load_dataset(name, scale=scale if scale is not None else BENCH_SCALE, seed=seed)
    train, valid, test = dataset.split()
    queries = dataset.ranking_queries(test)
    return dataset, train, valid, queries


def evaluate_queries(
    model: BaselineModel,
    queries: Sequence[RankingQuery],
    max_queries: int = None,
) -> EvaluationResult:
    evaluator = RankingEvaluator(
        hit_ks=(20, 50), ndcg_k=10, max_queries=max_queries or BENCH_QUERIES, rng=0
    )
    return evaluator.evaluate(model, queries)


def run_method(
    name: str,
    dataset: Dataset,
    train: EdgeStream,
    queries: Sequence[RankingQuery],
    dim: int = 32,
    seed: int = 0,
) -> MethodRun:
    """Fit ``name`` on ``train`` and evaluate on ``queries``."""
    model = build_method(name, dataset, dim=dim, seed=seed)
    start = time.perf_counter()
    model.fit(train)
    fit_seconds = time.perf_counter() - start
    result = evaluate_queries(model, queries)
    return MethodRun(
        method=name,
        dataset=dataset.name,
        metrics=result.metrics,
        fit_seconds=fit_seconds,
        result=result,
    )


def emit(name: str, text: str) -> None:
    """Print a harness table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


def star_best(runs: List[MethodRun], metric: str) -> str:
    """Name of the best method on ``metric`` (the row the paper bolds)."""
    best = max(runs, key=lambda r: r.metrics[metric])
    return best.method


def render_metric_table(
    title: str,
    runs_by_dataset: Dict[str, List[MethodRun]],
    metrics: Sequence[str],
) -> str:
    """Rows = methods, column groups = datasets x metrics."""
    datasets = list(runs_by_dataset)
    methods = [r.method for r in runs_by_dataset[datasets[0]]]
    headers = ["method"] + [f"{d}:{m}" for d in datasets for m in metrics]
    rows = []
    for method in methods:
        row: List[object] = [method]
        for d in datasets:
            run = next(r for r in runs_by_dataset[d] if r.method == method)
            row.extend(run.metrics[m] for m in metrics)
        rows.append(row)
    highlight = list(range(1, len(headers)))
    return format_table(headers, rows, title=title, highlight_best=highlight)
