"""Recovery benchmark: crash cost, WAL/checkpoint overhead, parity.

Replays a zoo dataset through the serving stack three ways:

1. **golden** — no resilience machinery at all (the baseline cost);
2. **durable** — identical replay with the WAL + periodic checkpoints
   enabled, measuring the durability overhead;
3. **crash + recover** — the durable run is killed at several stream
   positions and rebuilt via :func:`repro.resilience.recovery.recover`,
   measuring recovery wall-clock and replay volume.

Every recovered run must end **bitwise identical** to the golden run
(model state, both RNG streams, clock and served top-K) — the same
guarantee ``tests/resilience/test_recovery_parity.py`` gates on, here
measured at benchmark scale.  Results land in
``benchmarks/results/recovery.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import Dict, List

import numpy as np

from harness import BENCH_SCALE, RESULTS_DIR, emit
from repro.core import InsLearnConfig, SUPAConfig
from repro.core.model import SUPA
from repro.datasets import load_dataset
from repro.resilience import recover
from repro.resilience.checkpoint import _flatten
from repro.serve import RecommendationService, ServeConfig
from repro.utils.tables import format_table

DATASET = "uci"
BATCH_SIZE = 64
CHECKPOINT_EVERY = 4
CRASH_FRACTIONS = (0.1, 0.5, 0.9)
K = 10
JSON_PATH = os.path.join(RESULTS_DIR, "recovery.json")


def _configs(seed: int = 0):
    model_cfg = SUPAConfig(dim=32, num_walks=2, walk_length=2, seed=seed)
    train_cfg = InsLearnConfig(
        batch_size=BATCH_SIZE,
        max_iterations=2,
        validation_interval=1,
        validation_size=25,
        patience=1,
        seed=seed,
    )
    return model_cfg, train_cfg


def _state_fingerprint(service) -> bytes:
    flat: Dict[str, np.ndarray] = {}
    _flatten(service.model.state_dict(), "", flat)
    return b"".join(np.ascontiguousarray(flat[k]).tobytes() for k in sorted(flat))


def _replay(dataset, serve_cfg, model_cfg, train_cfg, upto=None):
    service = RecommendationService(
        dataset,
        model=SUPA.for_dataset(dataset, model_cfg),
        config=serve_cfg,
        train_config=train_cfg,
    )
    start = time.perf_counter()
    for i, edge in enumerate(dataset.stream):
        if upto is not None and i >= upto:
            break
        service.ingest(edge)
    if upto is None:
        service.flush()
    return service, time.perf_counter() - start


def run_recovery_benchmark() -> Dict[str, object]:
    dataset = load_dataset(DATASET, scale=min(BENCH_SCALE, 0.5))
    num_events = len(dataset.stream)
    model_cfg, train_cfg = _configs()

    golden_cfg = ServeConfig(batch_size=BATCH_SIZE)
    golden, golden_seconds = _replay(dataset, golden_cfg, model_cfg, train_cfg)
    golden_print = _state_fingerprint(golden)
    golden_users = golden.users[:: max(1, golden.users.size // 32)]
    golden_topk = {int(u): golden.recommend(int(u), K) for u in golden_users}

    state_dir = tempfile.mkdtemp(prefix="repro-bench-recovery-")
    durable_cfg = ServeConfig(
        batch_size=BATCH_SIZE,
        wal_path=os.path.join(state_dir, "bench.wal"),
        checkpoint_dir=os.path.join(state_dir, "checkpoints"),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    durable, durable_seconds = _replay(dataset, durable_cfg, model_cfg, train_cfg)
    durable.close()
    wal_bytes = os.path.getsize(durable_cfg.wal_path)
    overhead = (
        (durable_seconds - golden_seconds) / golden_seconds
        if golden_seconds
        else 0.0
    )

    crash_rows: List[Dict[str, object]] = []
    for fraction in CRASH_FRACTIONS:
        crash_at = max(1, int(num_events * fraction))
        run_dir = tempfile.mkdtemp(prefix="repro-bench-crash-")
        cfg = ServeConfig(
            batch_size=BATCH_SIZE,
            wal_path=os.path.join(run_dir, "bench.wal"),
            checkpoint_dir=os.path.join(run_dir, "checkpoints"),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        victim, _ = _replay(dataset, cfg, model_cfg, train_cfg, upto=crash_at)
        victim.close()  # the crash

        result = recover(
            dataset, serve_config=cfg, model_config=model_cfg, train_config=train_cfg
        )
        service = result.service
        for edge in list(dataset.stream)[crash_at:]:
            service.ingest(edge)
        service.flush()
        service.close()

        parity = _state_fingerprint(service) == golden_print and all(
            np.array_equal(service.recommend(u, K), golden_topk[u])
            for u in golden_topk
        )
        crash_rows.append(
            {
                "crash_at": crash_at,
                "crash_fraction": fraction,
                "checkpoint_seq": result.checkpoint_seq,
                "replayed_events": result.replayed_events,
                "replayed_batches": result.replayed_batches,
                "residue_events": result.residue_events,
                "recovery_seconds": result.recovery_seconds,
                "parity": bool(parity),
            }
        )
        shutil.rmtree(run_dir)
    shutil.rmtree(state_dir)

    return {
        "dataset": DATASET,
        "num_events": num_events,
        "batch_size": BATCH_SIZE,
        "checkpoint_every": CHECKPOINT_EVERY,
        "golden_seconds": golden_seconds,
        "durable_seconds": durable_seconds,
        "durability_overhead_fraction": overhead,
        "wal_bytes": wal_bytes,
        "crashes": crash_rows,
        "all_parity": all(r["parity"] for r in crash_rows),
    }


def main() -> int:
    summary = run_recovery_benchmark()
    rows = [
        [
            r["crash_at"],
            r["checkpoint_seq"],
            r["replayed_events"],
            r["residue_events"],
            round(r["recovery_seconds"], 3),
            "yes" if r["parity"] else "NO",
        ]
        for r in summary["crashes"]
    ]
    text = format_table(
        ["crash@", "ckpt seq", "replayed", "residue", "recover s", "bitwise parity"],
        rows,
        title=(
            f"crash recovery on {summary['dataset']} "
            f"({summary['num_events']} events, S={summary['batch_size']}, "
            f"durability overhead "
            f"{summary['durability_overhead_fraction'] * 100:.1f}%, "
            f"WAL {summary['wal_bytes'] / 1024:.0f} KiB)"
        ),
    )
    emit("recovery", text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")
    return 0 if summary["all_parity"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
