"""Figure 6: robustness to neighbourhood disturbance (recency cap eta).

Each node keeps only its latest eta neighbours
(eta in {5, 10, 20, 50, 100, inf}), simulating the memory-constrained
platform of the paper's motivation.  Models train on the capped graph.

Expected shape (paper): SUPA best and nearly flat across eta (its
propagation architecture does not aggregate neighbourhoods);
EvolveGCN also flat; neighbour-aggregation baselines vary with eta.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import pytest

from harness import (
    BENCH_QUERIES,
    build_method,
    emit,
    prepare,
    supa_configs,
)
from repro.baselines import make_baseline
from repro.baselines.registry import STRONG_BASELINES
from repro.core import SUPA, InsLearnTrainer
from repro.eval import RankingEvaluator
from repro.graph.streams import EdgeStream
from repro.utils.tables import format_table

ETAS = [5, 10, 20, 50, 100, None]  # None = no cap (infinity)
METHODS = STRONG_BASELINES + ["SUPA"]


def run_disturbance_protocol():
    dataset, train, _, queries = prepare("movielens")
    evaluator = RankingEvaluator(hit_ks=(50,), ndcg_k=10, max_queries=BENCH_QUERIES, rng=0)
    results: Dict[str, List[float]] = {name: [] for name in METHODS}
    for eta in ETAS:
        # The capped training stream: replay the edges through a capped
        # graph and keep only the ones still traversable at the end —
        # the "most recent subgraph" a constrained platform retains.
        capped_graph = dataset.build_graph(train, max_neighbors=eta)
        surviving = set(capped_graph.traversable_edge_indices())
        capped_train = EdgeStream(
            [e for i, e in enumerate(train) if i in surviving]
        )
        for name in METHODS:
            if name == "SUPA":
                model_cfg, train_cfg = supa_configs()
                model = make_baseline(
                    "SUPA",
                    dataset,
                    config=model_cfg,
                    train_config=train_cfg,
                    max_neighbors=eta,
                )
            else:
                model = build_method(name, dataset)
            model.fit(capped_train)
            results[name].append(evaluator.evaluate(model, queries)["H@50"])
    return results


def test_fig6_neighborhood_disturbance(benchmark):
    results = benchmark.pedantic(run_disturbance_protocol, rounds=1, iterations=1)
    headers = ["method"] + [str(e) if e else "inf" for e in ETAS] + ["spread"]
    rows = []
    for name in METHODS:
        trace = results[name]
        rows.append([name] + trace + [max(trace) - min(trace)])
    text = format_table(
        headers,
        rows,
        title="Figure 6: H@50 under neighbour cap eta (spread = max - min)",
    )
    emit("fig6_neighborhood_disturbance", text)

    supa = np.asarray(results["SUPA"])
    assert supa.min() > 0
    benchmark.extra_info["SUPA spread"] = float(supa.max() - supa.min())
