"""Tables V and VI: link prediction, 17 methods x 6 datasets.

Regenerates the paper's headline comparison — H@20/H@50 (Table V) and
NDCG@10/MRR (Table VI) for every method on every dataset, with the
p < 0.01 paired t-test star for SUPA where it beats every baseline.

Expected shape (paper): SUPA best on every dataset; walk-based methods
(DeepWalk/node2vec) are the strongest static family; dynamic
homogeneous methods (NetWalk, DyGNN, DyHATR) are weak on
recommendation; DyHNE is the slowest.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from harness import (
    ALL_DATASETS,
    MethodRun,
    emit,
    prepare,
    render_metric_table,
    run_method,
)
from repro.baselines import available_baselines
from repro.eval import paired_t_test

METHODS = [
    "DeepWalk",
    "LINE",
    "node2vec",
    "GATNE",
    "NGCF",
    "LightGCN",
    "MATN",
    "MB-GMN",
    "HybridGNN",
    "MeLU",
    "NetWalk",
    "DyGNN",
    "EvolveGCN",
    "TGAT",
    "DyHNE",
    "DyHATR",
    "SUPA",
]

_RUNS: Dict[str, List[MethodRun]] = {}


def _run_dataset(name: str) -> List[MethodRun]:
    if name not in _RUNS:
        dataset, train, _, queries = prepare(name)
        _RUNS[name] = [run_method(m, dataset, train, queries) for m in METHODS]
    return _RUNS[name]


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
def test_link_prediction_dataset(benchmark, dataset_name):
    """One benchmark per dataset: fit + evaluate all 17 methods."""
    runs = benchmark.pedantic(
        _run_dataset, args=(dataset_name,), rounds=1, iterations=1
    )
    supa = next(r for r in runs if r.method == "SUPA")
    for metric in ("H@20", "H@50", "NDCG@10", "MRR"):
        benchmark.extra_info[f"SUPA:{metric}"] = supa.metrics[metric]


def test_render_tables_v_vi(benchmark):
    """Assemble and print the combined Table V + VI from all datasets."""

    def render():
        runs_by_dataset = {name: _run_dataset(name) for name in ALL_DATASETS}
        table_v = render_metric_table(
            "Table V: link prediction H@K", runs_by_dataset, ("H@20", "H@50")
        )
        table_vi = render_metric_table(
            "Table VI: link prediction NDCG@10 / MRR",
            runs_by_dataset,
            ("NDCG@10", "MRR"),
        )
        stars = []
        for name, runs in runs_by_dataset.items():
            supa = next(r for r in runs if r.method == "SUPA")
            better_than_all = True
            for r in runs:
                if r.method == "SUPA":
                    continue
                t = paired_t_test(supa.result.ranks, r.result.ranks)
                if not t.significant(alpha=0.01):
                    better_than_all = False
            stars.append(
                f"{name}: SUPA {'significantly best (p<0.01)' if better_than_all else 'not significantly best vs every baseline'}"
            )
        return "\n\n".join([table_v, table_vi, "\n".join(stars)])

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    emit("table_v_vi_link_prediction", text)
    assert "SUPA" in text
