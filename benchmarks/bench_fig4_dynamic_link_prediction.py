"""Figure 4: dynamic link prediction on the MovieLens-like stream.

The edge set is sorted by time and cut into 10 equal parts
``E_1..E_10``; each method (re)trains on ``E_i`` and is evaluated on
``E_{i+1}`` for ``i = 1..9``.  Static methods retrain on everything seen
so far; dynamic methods (SUPA, EvolveGCN-style) train incrementally.

Expected shape (paper): SUPA best in most steps; MB-GMN the strongest
baseline; a dip where the stream has a long time gap; multiplex-aware
methods spike at the last step.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np
import pytest

from harness import BENCH_QUERIES, build_method, emit, prepare
from repro.baselines.registry import STRONG_BASELINES
from repro.eval import RankingEvaluator
from repro.graph.streams import EdgeStream
from repro.utils.tables import format_table

METHODS = STRONG_BASELINES + ["SUPA"]
NUM_STEPS = 10

_CACHE: Dict[str, object] = {}


def run_dynamic_protocol():
    """Returns per-step H@50/MRR and total runtime per method."""
    if "results" in _CACHE:
        return _CACHE["results"]
    dataset, train, valid, _ = prepare("movielens")
    full = dataset.stream
    slices = full.equal_slices(NUM_STEPS)
    evaluator = RankingEvaluator(hit_ks=(50,), ndcg_k=10, max_queries=BENCH_QUERIES, rng=0)

    per_method: Dict[str, Dict[str, List[float]]] = {}
    runtimes: Dict[str, float] = {}
    slice_len = max(1, len(slices[0]))
    for name in METHODS:
        model = build_method(name, dataset)
        h50_trace, mrr_trace = [], []
        total = 0.0
        seen = []
        for i in range(NUM_STEPS - 1):
            seen.extend(list(slices[i]))
            start = time.perf_counter()
            if model.is_dynamic:
                # incremental training on the new slice only
                model.partial_fit(slices[i])
            else:
                # full retrain on everything seen so far, with a training
                # budget that grows with the data (as converging would)
                model = build_method(
                    name, dataset, steps_scale=len(seen) / slice_len
                )
                model.fit(EdgeStream(list(seen)))
            total += time.perf_counter() - start
            queries = dataset.ranking_queries(slices[i + 1])
            result = evaluator.evaluate(model, queries)
            h50_trace.append(result["H@50"])
            mrr_trace.append(result["MRR"])
        per_method[name] = {"H@50": h50_trace, "MRR": mrr_trace}
        runtimes[name] = total
    _CACHE["results"] = (per_method, runtimes)
    return _CACHE["results"]


def test_fig4_dynamic_link_prediction(benchmark):
    per_method, _ = benchmark.pedantic(run_dynamic_protocol, rounds=1, iterations=1)

    headers = ["method"] + [f"step{i+1}" for i in range(NUM_STEPS - 1)] + ["mean"]
    sections = []
    for metric in ("H@50", "MRR"):
        rows = []
        for name in METHODS:
            trace = per_method[name][metric]
            rows.append([name] + list(trace) + [float(np.mean(trace))])
        sections.append(
            format_table(
                headers,
                rows,
                title=f"Figure 4 ({metric}): train on E_i, evaluate on E_i+1",
                highlight_best=[len(headers) - 1],
            )
        )
    emit("fig4_dynamic_link_prediction", "\n\n".join(sections))

    supa_mean = np.mean(per_method["SUPA"]["MRR"])
    assert supa_mean > 0.0
    benchmark.extra_info["SUPA mean MRR"] = float(supa_mean)
