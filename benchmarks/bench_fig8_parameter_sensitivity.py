"""Figure 8: parameter sensitivity of SUPA and InsLearn.

Sweeps the five model hyper-parameters (d, k, l, N_neg, g(tau)) and the
five workflow hyper-parameters (N_iter, I_valid, S_valid, mu, S_batch)
one at a time around the calibrated defaults, on the UCI- and
Taobao-like datasets (the two smallest).

Expected shape (paper): quality saturates at moderate d; k and l are
dataset-dependent; N_neg = 5 and g(tau) = 0.3 adequate everywhere;
workflow parameters are insensitive except very small S_batch.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from harness import emit, evaluate_queries, prepare, supa_configs
from repro.baselines import make_baseline
from repro.core import InsLearnConfig, SUPAConfig, tau_from_g
from repro.utils.tables import format_table

DATASETS = ["uci", "taobao"]

MODEL_SWEEPS: Dict[str, List[object]] = {
    "dim": [8, 16, 32, 64],
    "num_walks": [1, 2, 4, 8],
    "walk_length": [1, 2, 3, 5],
    "num_negatives": [1, 3, 5, 7],
    "tau_g_value": [0.1, 0.3, 0.5],
}

WORKFLOW_SWEEPS: Dict[str, List[object]] = {
    "max_iterations": [2, 4, 8, 16],
    "validation_interval": [1, 2, 4, 8],
    "validation_size": [30, 100, 150],
    "patience": [0, 1, 3],
    "batch_size": [16, 64, 256, 1024],
}


def _fit_and_score(dataset, train, queries, model_cfg, train_cfg) -> float:
    model = make_baseline("SUPA", dataset, dim=model_cfg.dim,
                          config=model_cfg, train_config=train_cfg)
    model.fit(train)
    return evaluate_queries(model, queries)["H@50"]


def run_sensitivity(dataset_name: str) -> List[Tuple[str, object, float]]:
    dataset, train, _, queries = prepare(dataset_name)
    base_model, base_train = supa_configs()
    rows: List[Tuple[str, object, float]] = []
    for param, values in MODEL_SWEEPS.items():
        for value in values:
            overrides = {param: value}
            if param == "tau_g_value":
                overrides["tau"] = tau_from_g(value)
            cfg = base_model.with_overrides(**overrides)
            rows.append((param, value, _fit_and_score(dataset, train, queries, cfg, base_train)))
    for param, values in WORKFLOW_SWEEPS.items():
        for value in values:
            kwargs = {
                "batch_size": base_train.batch_size,
                "max_iterations": base_train.max_iterations,
                "validation_interval": base_train.validation_interval,
                "validation_size": base_train.validation_size,
                "patience": base_train.patience,
            }
            kwargs[param] = value
            if param == "batch_size":
                kwargs["validation_size"] = min(
                    kwargs["validation_size"], max(4, value // 4)
                )
            tcfg = InsLearnConfig(**kwargs)
            rows.append((param, value, _fit_and_score(dataset, train, queries, base_model, tcfg)))
    return rows


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig8_parameter_sensitivity(benchmark, dataset_name):
    rows = benchmark.pedantic(
        run_sensitivity, args=(dataset_name,), rounds=1, iterations=1
    )
    text = format_table(
        ["parameter", "value", "H@50"],
        [[p, str(v), s] for p, v, s in rows],
        title=f"Figure 8 ({dataset_name}): parameter sensitivity (H@50)",
    )
    emit(f"fig8_parameter_sensitivity_{dataset_name}", text)
    assert all(s >= 0 for _, _, s in rows)
