"""Sharding ablation: measured multi-worker throughput of SUPA updates.

Quantifies the paper's Section IV-H claim that SUPA's localized updates
parallelise across workers, in two layers:

1. the **analytic** bound from conflict-free round partitioning
   (:func:`repro.core.shard.estimate_parallel_speedup`) — unchanged from
   the original estimator, now living in :mod:`repro.core.shard`;
2. a **measured** protocol over the real sharded engine: steady-state
   batches execute with ``shard_backend="serial"`` so every chunk's busy
   time is timed cleanly (no GIL interleaving on small CI hosts).

The gated quantity is the **round-parallel phase** — the chunk
execution the shard scheduler actually distributes.  Its wall clock at
``w`` workers is the sum of per-round critical paths (each round's
longest chunk); at ``w = 1`` every round is a single chunk, so the
critical path *is* the busy time and the model is exact.  Compile (the
coordinator owns the RNG stream by design, DESIGN.md §14), schedule
construction and the deterministic barrier merges stay serial on the
coordinator, so end-to-end speedup is Amdahl-bounded well below the
phase speedup; the end-to-end model

    wall(w) = measured_wall - total_chunk_busy + critical_path

is reported alongside for honesty, but the gate is on the phase the
subsystem parallelises.  The warm-up losses of every worker count must
be bitwise identical — the engine's worker-count-invariance contract —
otherwise the comparison is meaningless.

Writes ``benchmarks/results/shard_throughput.json`` and gates on the
phase speedup at 4 workers.
"""

from __future__ import annotations

import json
import os

import numpy as np

from harness import RESULTS_DIR, emit, prepare
from repro.core import SUPAConfig
from repro.core.engine.benchmark import _steady_state_records
from repro.core.model import SUPA
from repro.core.shard import estimate_parallel_speedup, shard_statistics
from repro.utils.tables import format_table
from repro.utils.timer import Timer

WORKERS = [1, 2, 4]
ESTIMATE_WORKERS = [1, 2, 4, 8, 16]
SCALE = 2.0
DIM = 128
WARM_HISTORY = 4096
BATCH_SIZE = 1024
PASSES = 2
MIN_SPEEDUP_AT_4 = 1.8


def _measure_worker_count(dataset, workers: int):
    """Steady-state phase + end-to-end throughput at ``workers`` workers."""
    cfg = SUPAConfig(
        dim=DIM,
        seed=7,
        engine="sharded",
        shard_workers=workers,
        shard_backend="serial",
        shard_min_chunk=2,
    )
    model = SUPA.for_dataset(dataset, config=cfg)
    records = _steady_state_records(model, dataset, WARM_HISTORY, BATCH_SIZE)
    warmup_losses = model.train_batch(records)  # untimed; parity witness
    engine = model.engine
    engine.reset_shard_counters()
    timer = Timer()
    with timer:
        for _ in range(PASSES):
            model.train_batch(records)
    measured_wall = timer.elapsed
    busy = engine.busy_seconds
    critical = engine.critical_path_seconds
    modeled_wall = measured_wall - busy + critical
    edges = PASSES * len(records)
    return {
        "workers": workers,
        "edges": edges,
        "measured_wall_seconds": measured_wall,
        "chunk_busy_seconds": busy,
        "critical_path_seconds": critical,
        "phase_edges_per_second": edges / critical,
        "modeled_wall_seconds": modeled_wall,
        "end_to_end_edges_per_second": edges / modeled_wall,
        "rounds": engine.total_rounds,
        "chunks": engine.total_chunks,
        "imbalance": engine.last_shard_stats["imbalance"],
    }, warmup_losses


def run_sharding():
    dataset, train, _, _ = prepare("kuaishou", scale=SCALE)

    # Layer 1: the analytic conflict-free bound (estimator only).
    batches = train.sequential_batches(BATCH_SIZE)
    estimate_rows = []
    for workers in ESTIMATE_WORKERS:
        speedups = [
            estimate_parallel_speedup(list(batch), workers) for batch in batches
        ]
        estimate_rows.append([workers, sum(speedups) / len(speedups)])
    stats = shard_statistics(list(batches[0]))

    # Layer 2: the measured sharded engine.
    measured = []
    witness = None
    for workers in WORKERS:
        row, losses = _measure_worker_count(dataset, workers)
        if witness is None:
            witness = losses
        else:
            assert losses.tobytes() == witness.tobytes(), (
                f"worker-count invariance violated at {workers} workers"
            )
        measured.append(row)
    phase_base = measured[0]["phase_edges_per_second"]
    e2e_base = measured[0]["end_to_end_edges_per_second"]
    for row in measured:
        row["phase_speedup"] = row["phase_edges_per_second"] / phase_base
        row["end_to_end_speedup"] = row["end_to_end_edges_per_second"] / e2e_base
    return estimate_rows, stats, measured


def test_sharding_speedup(benchmark):
    estimate_rows, stats, measured = benchmark.pedantic(
        run_sharding, rounds=1, iterations=1
    )
    text = format_table(
        ["workers", "mean speedup over batches"],
        estimate_rows,
        title=(
            "Sharding ablation: conflict-free parallel speedup bound "
            f"(first batch: {stats['edges']} edges in {stats['rounds']} rounds)"
        ),
        precision=2,
    )
    text += "\n\n" + format_table(
        [
            "workers",
            "phase edges/s",
            "phase speedup",
            "e2e edges/s (modeled)",
            "e2e speedup",
            "imbalance",
        ],
        [
            [
                r["workers"],
                r["phase_edges_per_second"],
                r["phase_speedup"],
                r["end_to_end_edges_per_second"],
                r["end_to_end_speedup"],
                r["imbalance"],
            ]
            for r in measured
        ],
        title=(
            "Sharded engine, measured (serial backend; phase = round-parallel "
            f"chunk execution; dim={DIM}, S_batch={BATCH_SIZE}, "
            f"history={WARM_HISTORY}, scale={SCALE})"
        ),
        precision=2,
    )
    emit("ablation_sharding", text)

    report = {
        "dataset": "kuaishou",
        "scale": SCALE,
        "dim": DIM,
        "warm_history": WARM_HISTORY,
        "batch_size": BATCH_SIZE,
        "passes": PASSES,
        "host_cpus": os.cpu_count(),
        "methodology": (
            "serial shard backend for clean per-chunk timing on small hosts; "
            "gated quantity is the round-parallel chunk-execution phase, "
            "whose wall at w workers is the sum of per-round critical paths "
            "(exact at w=1 where critical == busy); compile/schedule/merge "
            "stay coordinator-serial by design (RNG ownership, deterministic "
            "merges), so the end-to-end model wall = measured - busy + "
            "critical is Amdahl-bounded and reported for context; warm-up "
            "losses bitwise identical across worker counts"
        ),
        "min_phase_speedup_at_4": MIN_SPEEDUP_AT_4,
        "workers": measured,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "shard_throughput.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # estimator sanity: monotone, >1 beyond one worker
    assert estimate_rows[1][1] > 1.0
    assert all(b[1] >= a[1] - 1e-9 for a, b in zip(estimate_rows, estimate_rows[1:]))
    # measured gate: the parallelised phase must clear the bar at 4 workers
    at4 = next(r for r in measured if r["workers"] == 4)
    assert at4["phase_speedup"] >= MIN_SPEEDUP_AT_4, (
        f"4-worker phase speedup {at4['phase_speedup']:.2f}x below {MIN_SPEEDUP_AT_4}x"
    )
    # end-to-end must not regress below 1x (coordinator overhead only)
    assert at4["end_to_end_speedup"] >= 1.0
