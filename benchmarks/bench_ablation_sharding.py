"""Sharding ablation: simulated multi-worker speedup of SUPA updates.

Quantifies the paper's Section IV-H claim that SUPA's localized updates
parallelise across workers, on a real generated stream: partitions each
InsLearn batch into conflict-free rounds and reports the achievable
throughput multiple per worker count.
"""

from __future__ import annotations

from harness import emit, prepare
from repro.core.sharding import estimate_parallel_speedup, shard_statistics
from repro.utils.tables import format_table

WORKERS = [1, 2, 4, 8, 16]


def run_sharding():
    dataset, train, _, _ = prepare("kuaishou")
    batches = train.sequential_batches(1024)
    rows = []
    for workers in WORKERS:
        speedups = [
            estimate_parallel_speedup(list(batch), workers) for batch in batches
        ]
        rows.append([workers, sum(speedups) / len(speedups)])
    stats = shard_statistics(list(batches[0]))
    return rows, stats


def test_sharding_speedup(benchmark):
    rows, stats = benchmark.pedantic(run_sharding, rounds=1, iterations=1)
    text = format_table(
        ["workers", "mean speedup over batches"],
        rows,
        title=(
            "Sharding ablation: conflict-free parallel speedup "
            f"(first batch: {stats['edges']} edges in {stats['rounds']} rounds)"
        ),
        precision=2,
    )
    emit("ablation_sharding", text)
    # speedup must be monotone and exceed 1 once there are >1 workers
    assert rows[1][1] > 1.0
    assert all(b[1] >= a[1] - 1e-9 for a, b in zip(rows, rows[1:]))
