"""Table VIII: benefits of modelling multiplex heterogeneity and
streaming dynamics.

Runs the six targeted ablations on the two most multiplex datasets
(Taobao- and Kuaishou-like): SUPA_sn (shared alpha), SUPA_se (shared
context), SUPA_s (both), SUPA_nf (no short-term memory), SUPA_nd (no
propagation decay/filter), SUPA_nt (no time components), plus full SUPA.

Expected shape (paper): full SUPA best; SUPA_s and SUPA_nt the worst of
their respective groups.
"""

from __future__ import annotations

from typing import Dict

from harness import emit, evaluate_queries, prepare, supa_configs
from repro.core import SUPA, InsLearnTrainer
from repro.core.variants import make_variant
from repro.utils.tables import format_table

DATASETS = ["taobao", "kuaishou"]
VARIANTS = ["supa_sn", "supa_se", "supa_s", "supa_nf", "supa_nd", "supa_nt", "supa"]


def run_table_viii():
    base_cfg, train_cfg = supa_configs()
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in DATASETS:
        dataset, train, _, queries = prepare(name)
        per_variant = {}
        for variant in VARIANTS:
            model = SUPA.for_dataset(dataset, make_variant(variant, base_cfg))
            InsLearnTrainer(model, train_cfg).fit(train)
            result = evaluate_queries(model, queries)
            per_variant[variant] = {"H@50": result["H@50"], "MRR": result["MRR"]}
        results[name] = per_variant
    return results


def test_table_viii_hetero_dynamics(benchmark):
    results = benchmark.pedantic(run_table_viii, rounds=1, iterations=1)
    headers = ["variant"] + [
        f"{d}:{m}" for d in DATASETS for m in ("H@50", "MRR")
    ]
    rows = []
    for variant in VARIANTS:
        row = [variant]
        for d in DATASETS:
            row.extend(results[d][variant][m] for m in ("H@50", "MRR"))
        rows.append(row)
    text = format_table(
        headers,
        rows,
        title="Table VIII: heterogeneity / dynamics ablations",
        highlight_best=list(range(1, len(headers))),
    )
    emit("table_viii_hetero_dynamics", text)
    for d in DATASETS:
        assert results[d]["supa"]["MRR"] > 0
    benchmark.extra_info["supa taobao MRR"] = results["taobao"]["supa"]["MRR"]
