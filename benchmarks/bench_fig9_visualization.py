"""Figure 9: t-SNE visualisation of test user-item pairs (Taobao-like).

Randomly selects 20 user-item pairs from the test set, projects each
method's embeddings of those 40 nodes to 2-D with t-SNE, and reports
the mean total pair distance d-bar over repeated projections — the
paper's quantitative companion to the scatter plots (smaller d-bar =
true pairs embedded closer = better).

Expected shape (paper): SUPA has the smallest d-bar.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from harness import build_method, emit, prepare
from repro.eval.tsne import tsne
from repro.utils.rng import new_rng
from repro.utils.tables import format_table

METHODS = ["node2vec", "GATNE", "LightGCN", "MB-GMN", "EvolveGCN", "SUPA"]
NUM_PAIRS = 20
REPEATS = 10  # paper uses 100; scaled for CPU


def mean_pair_distance(embeddings: np.ndarray, repeats: int = REPEATS):
    """``(d_bar, d_bar_rel)`` over repeated projections.

    ``d_bar`` is the paper's raw summed true-pair distance; ``d_bar_rel``
    divides by the mean distance of *mismatched* user-item pairs in the
    same projection, cancelling each method's global layout spread (a
    collapsed embedding gets small raw distances without ranking pairs
    any better — the relative form is comparable across methods).
    """
    totals, relatives = [], []
    for seed in range(repeats):
        projected = tsne(embeddings, iterations=150, rng=seed)
        users = projected[:NUM_PAIRS]
        items = projected[NUM_PAIRS:]
        true_d = np.linalg.norm(users - items, axis=1)
        cross = np.linalg.norm(users[:, None, :] - items[None, :, :], axis=2)
        mismatched = cross[~np.eye(NUM_PAIRS, dtype=bool)]
        totals.append(float(true_d.sum()))
        relatives.append(float(true_d.mean() / max(mismatched.mean(), 1e-12)))
    return float(np.mean(totals)), float(np.mean(relatives))


def run_visualization() -> Dict[str, float]:
    dataset, train, _, queries = prepare("taobao")
    rng = new_rng(0)
    picks = rng.choice(len(queries), size=min(NUM_PAIRS, len(queries)), replace=False)
    pairs = [(queries[i].node, queries[i].true_node) for i in picks]
    users = [u for u, _ in pairs]
    items = [v for _, v in pairs]
    eval_time = float(train.timestamps().max())

    out: Dict[str, tuple] = {}
    coords: Dict[str, np.ndarray] = {}
    for name in METHODS:
        model = build_method(name, dataset)
        model.fit(train)
        if name == "SUPA":
            emb = model.model.final_embeddings(users + items, "page_view", eval_time)
        else:
            table = model._table("page_view")
            emb = table[np.asarray(users + items)]
        out[name] = mean_pair_distance(np.asarray(emb, dtype=np.float64))
        coords[name] = tsne(np.asarray(emb, dtype=np.float64), iterations=150, rng=0)
    return out, coords


def test_fig9_visualization(benchmark):
    out, coords = benchmark.pedantic(run_visualization, rounds=1, iterations=1)
    rows = sorted(
        ([m, raw, rel] for m, (raw, rel) in out.items()), key=lambda r: r[2]
    )
    text = format_table(
        ["method", "d-bar (raw sum)", "d-bar relative to mismatched pairs"],
        rows,
        title=f"Figure 9: t-SNE of {NUM_PAIRS} test user-item pairs (Taobao-like)",
        precision=3,
    )
    # ASCII scatter of SUPA's projection for a quick visual check.
    text += "\n\nSUPA projection (u = user, i = item):\n" + _ascii_scatter(
        coords["SUPA"]
    )
    emit("fig9_visualization", text)
    assert out["SUPA"][0] > 0
    benchmark.extra_info["SUPA d-bar"] = out["SUPA"][0]
    benchmark.extra_info["SUPA d-bar relative"] = out["SUPA"][1]


def _ascii_scatter(points: np.ndarray, width: int = 60, height: int = 20) -> str:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    grid = [[" "] * width for _ in range(height)]
    for idx, (x, y) in enumerate(points):
        col = int((x - lo[0]) / span[0] * (width - 1))
        row = int((y - lo[1]) / span[1] * (height - 1))
        grid[row][col] = "u" if idx < NUM_PAIRS else "i"
    return "\n".join("".join(row) for row in grid)
